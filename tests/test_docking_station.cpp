/**
 * @file
 * Unit tests for the docking station (dock/undock timing, PCIe-speed
 * IO, occupancy rules).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/docking_station.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

struct Rig
{
    DhlConfig cfg = defaultConfig();
    Simulator sim;
    DockingStation st{sim, cfg, "st0"};
    Cart cart{0, cfg};

    /** Drive the cart to the arrival point (InFlight at the rack). */
    void
    flyIn()
    {
        cart.beginUndock();
        cart.launch();
        st.reserve(cart);
    }
};

} // namespace

TEST(DockingStationTest, StartsFree)
{
    Rig r;
    EXPECT_TRUE(r.st.free());
    EXPECT_EQ(r.st.cart(), nullptr);
}

TEST(DockingStationTest, DockTakesDockTime)
{
    Rig r;
    r.flyIn();
    EXPECT_FALSE(r.st.free());
    bool docked = false;
    r.st.beginDock([&] { docked = true; });
    r.sim.run();
    EXPECT_TRUE(docked);
    EXPECT_DOUBLE_EQ(r.sim.now(), 3.0);
    EXPECT_EQ(r.cart.state(), CartState::Docked);
}

TEST(DockingStationTest, ReadAtArrayBandwidth)
{
    Rig r;
    r.cart.loadBytes(u::terabytes(10));
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();

    double got = 0.0;
    const double t0 = r.sim.now();
    r.st.read(u::terabytes(10), [&](double b) { got = b; });
    r.sim.run();
    EXPECT_DOUBLE_EQ(got, u::terabytes(10));
    // 10 TB at 32 * 7.1 GB/s.
    EXPECT_NEAR(r.sim.now() - t0, 10e12 / (32 * 7.1e9), 1e-6);
    EXPECT_DOUBLE_EQ(r.st.bytesRead(), u::terabytes(10));
}

TEST(DockingStationTest, WriteCommitsBytesToCart)
{
    Rig r;
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();

    r.st.write(u::terabytes(4), nullptr);
    r.sim.run();
    EXPECT_DOUBLE_EQ(r.cart.storedBytes(), u::terabytes(4));
    EXPECT_DOUBLE_EQ(r.st.bytesWritten(), u::terabytes(4));
}

TEST(DockingStationTest, OverlappingIoPanics)
{
    Rig r;
    r.cart.loadBytes(u::terabytes(4));
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();
    r.st.read(u::terabytes(1), nullptr);
    EXPECT_THROW(r.st.read(u::terabytes(1), nullptr), dhl::PanicError);
    r.sim.run();
    // After completion IO is allowed again.
    EXPECT_NO_THROW(r.st.read(u::terabytes(1), nullptr));
    r.sim.run();
}

TEST(DockingStationTest, ReadBeyondContentsRejected)
{
    Rig r;
    r.cart.loadBytes(u::terabytes(1));
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();
    EXPECT_THROW(r.st.read(u::terabytes(2), nullptr), dhl::FatalError);
    EXPECT_THROW(r.st.write(u::terabytes(256), nullptr), dhl::FatalError);
}

TEST(DockingStationTest, UndockFreesAfterRelease)
{
    Rig r;
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();

    bool undocked = false;
    r.st.beginUndock([&] { undocked = true; });
    r.sim.run();
    EXPECT_TRUE(undocked);
    EXPECT_FALSE(r.st.free()); // still reserved until release
    r.st.release();
    EXPECT_TRUE(r.st.free());
    EXPECT_EQ(r.st.matingOperations(), 2u);
}

TEST(DockingStationTest, DoubleReservePanics)
{
    Rig r;
    r.flyIn();
    Cart other(1, r.cfg);
    EXPECT_THROW(r.st.reserve(other), dhl::PanicError);
}

TEST(DockingStationTest, UndockDuringIoPanics)
{
    Rig r;
    r.cart.loadBytes(u::terabytes(4));
    r.flyIn();
    r.st.beginDock(nullptr);
    r.sim.run();
    r.st.read(u::terabytes(4), nullptr);
    EXPECT_THROW(r.st.beginUndock(nullptr), dhl::PanicError);
}

TEST(DockingStationTest, ActionsOnEmptyStationPanic)
{
    Rig r;
    EXPECT_THROW(r.st.beginDock(nullptr), dhl::PanicError);
    EXPECT_THROW(r.st.beginUndock(nullptr), dhl::PanicError);
    EXPECT_THROW(r.st.read(1.0, nullptr), dhl::PanicError);
    EXPECT_THROW(r.st.release(), dhl::PanicError);
}
