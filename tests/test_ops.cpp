/**
 * @file
 * Unit tests for the fleet-operations subsystem (src/ops): maintenance
 * windows, correlated plant failures, wear coupling, and policy-driven
 * dispatch — including the byte-identical round-robin contract against
 * DhlFleet::runBulkTransfer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "dhl/fleet.hpp"
#include "faults/fault_state.hpp"
#include "ops/correlated.hpp"
#include "ops/dispatcher.hpp"
#include "ops/fleet_ops.hpp"
#include "ops/maintenance.hpp"
#include "ops/wear.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
using namespace dhl::ops;
namespace core = dhl::core;
namespace faults = dhl::faults;

namespace {

/** A fault config whose injector never fires outages (tiny horizon),
 *  so the ops processes own the whole downtime story. */
faults::FaultConfig
quietFaults(double cart_repair_per_trip = 0.0)
{
    faults::FaultConfig fc;
    fc.enabled = true;
    fc.horizon = 1e-9;
    fc.cart_repair_per_trip = cart_repair_per_trip;
    fc.cart_repair_hours = 0.001;
    return fc;
}

/** Compare every BulkRunResult field bit-for-bit. */
void
expectIdentical(const core::BulkRunResult &a, const core::BulkRunResult &b)
{
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.launches, b.launches);
    EXPECT_EQ(a.carts, b.carts);
    EXPECT_EQ(a.ssd_failures, b.ssd_failures);
    EXPECT_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.effective_bandwidth, b.effective_bandwidth);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
}

} // namespace

//===========================================================================
// MaintenanceScheduler
//===========================================================================

TEST(MaintenanceTest, ValidationRejectsNonsense)
{
    MaintenanceConfig bad;
    bad.windows.push_back({-1.0, 10.0, 0.0, -1});
    EXPECT_THROW(validate(bad, 2), FatalError);
    bad.windows[0] = {0.0, 0.0, 0.0, -1}; // zero duration
    EXPECT_THROW(validate(bad, 2), FatalError);
    bad.windows[0] = {0.0, 10.0, 5.0, -1}; // period <= duration
    EXPECT_THROW(validate(bad, 2), FatalError);
    bad.windows[0] = {0.0, 10.0, 0.0, 2}; // unknown track
    EXPECT_THROW(validate(bad, 2), FatalError);
    MaintenanceConfig ok;
    ok.windows.push_back({0.0, 10.0, 20.0, 1});
    EXPECT_NO_THROW(validate(ok, 2));
}

TEST(MaintenanceTest, WindowsDriveTheLaunchGates)
{
    sim::Simulator sim;
    faults::FaultState s0(sim);
    faults::FaultState s1(sim);

    MaintenanceConfig mc;
    mc.windows.push_back({10.0, 5.0, 0.0, 1});   // one-shot, track 1
    mc.windows.push_back({20.0, 2.0, 10.0, -1}); // periodic, fleet-wide
    mc.horizon = 45.0;
    MaintenanceScheduler sched(sim, {&s0, &s1}, mc);

    struct Probe
    {
        bool t0_ok, t1_ok, w0_open;
    };
    std::vector<std::pair<double, Probe>> probes;
    for (double t : {12.0, 16.0, 21.0, 23.0}) {
        sim.schedule(t, [&, t] {
            probes.push_back(
                {t, {s0.launchOk(), s1.launchOk(), sched.windowOpen(0)}});
        });
    }
    sim.run();

    ASSERT_EQ(probes.size(), 4u);
    // t=12: only the track-1 window is open.
    EXPECT_TRUE(probes[0].second.t0_ok);
    EXPECT_FALSE(probes[0].second.t1_ok);
    EXPECT_TRUE(probes[0].second.w0_open);
    // t=16: everything released again.
    EXPECT_TRUE(probes[1].second.t0_ok);
    EXPECT_TRUE(probes[1].second.t1_ok);
    EXPECT_FALSE(probes[1].second.w0_open);
    // t=21: the fleet-wide window blocks both tracks.
    EXPECT_FALSE(probes[2].second.t0_ok);
    EXPECT_FALSE(probes[2].second.t1_ok);
    // t=23: released.
    EXPECT_TRUE(probes[3].second.t0_ok);
    EXPECT_TRUE(probes[3].second.t1_ok);

    // One-shot once + periodic at 20, 30, 40 (start 50 >= horizon 45).
    EXPECT_EQ(sched.windowsStarted(), 4u);
    EXPECT_EQ(sched.windowsCompleted(), 4u);
    EXPECT_EQ(s0.launchInhibits(), 0u);
    EXPECT_EQ(s1.launchInhibits(), 0u);
}

//===========================================================================
// CorrelatedFaultModel
//===========================================================================

TEST(CorrelatedTest, DomainGroupingTakesTheRemainder)
{
    sim::Simulator sim;
    faults::FaultState a(sim), b(sim), c(sim), d(sim), e(sim);
    SharedDomainConfig cfg;
    cfg.enabled = true;
    cfg.domain_size = 2;
    cfg.horizon = 1e-9; // grouping only; no outages
    CorrelatedFaultModel model(sim, {&a, &b, &c, &d, &e}, cfg);
    EXPECT_EQ(model.domains(), 3u) << "5 tracks / 2 per plant";
    EXPECT_EQ(model.domainOf(0), 0u);
    EXPECT_EQ(model.domainOf(1), 0u);
    EXPECT_EQ(model.domainOf(4), 2u) << "last domain takes the remainder";
    EXPECT_THROW(model.domainOf(5), FatalError);
    EXPECT_FALSE(model.plantDown(0));
}

TEST(CorrelatedTest, OutagesTakeWholeDomainsDownDeterministically)
{
    auto run = [](std::uint64_t seed) {
        sim::Simulator sim;
        faults::FaultState s0(sim), s1(sim), s2(sim);
        SharedDomainConfig cfg;
        cfg.enabled = true;
        cfg.domain_size = 2;
        cfg.plant_mtbf = 0.05; // 180 s mean uptime
        cfg.plant_mttr = 0.01;
        cfg.seed = seed;
        cfg.horizon = 3600.0;
        CorrelatedFaultModel model(sim, {&s0, &s1, &s2}, cfg);

        // While plant 0 is down, BOTH its member tracks are inhibited
        // (the model pushes inhibits in member order, so by the time
        // s1's listener fires, s0 is already down) and the odd track
        // out (its own domain) is untouched unless its plant tripped.
        bool correlated_seen = false;
        s1.onOutage([&] {
            if (model.plantDown(0)) {
                correlated_seen = true;
                EXPECT_FALSE(s0.launchOk());
                EXPECT_FALSE(s1.launchOk());
            }
        });
        sim.run();
        EXPECT_GT(model.outages(), 0u);
        EXPECT_TRUE(correlated_seen);
        return model.outages();
    };
    EXPECT_EQ(run(7), run(7)) << "same seed, same outage count";
}

//===========================================================================
// WearCoupling
//===========================================================================

TEST(WearTest, ValidationAndWearReadout)
{
    WearCouplingConfig bad;
    bad.breakdown_gain = -1.0;
    EXPECT_THROW(validate(bad), FatalError);

    // A fresh library has zero wear everywhere.
    sim::Simulator sim;
    core::DhlController ctl(sim, core::defaultConfig());
    ctl.addCart(0.0);
    EXPECT_DOUBLE_EQ(cartWear(ctl.library(), 0), 0.0);
    EXPECT_DOUBLE_EQ(libraryWear(ctl.library()), 0.0);
}

TEST(WearTest, BreakdownGainCouplesRepairRateToWear)
{
    // Same seed, same trips; the only difference is the wear gain.  A
    // huge gain drives the per-trip probability to 1 as soon as the
    // connectors accumulate any wear, so breakdowns must strictly
    // exceed the uncoupled run's.
    const core::DhlConfig cfg = core::defaultConfig();
    auto breakdowns = [&](double gain) {
        OpsConfig oc;
        oc.faults = quietFaults(0.01);
        oc.wear.breakdown_gain = gain;
        FleetOps fo(cfg, 1, oc);
        fo.runBulkTransfer(8.0 * cfg.cartCapacity().value());
        return fo.fleet().track(0).cartBreakdowns();
    };
    const auto uncoupled = breakdowns(0.0);
    const auto coupled = breakdowns(1e9);
    EXPECT_GT(coupled, uncoupled);
    EXPECT_EQ(breakdowns(1e9), coupled) << "coupling replays exactly";
}

TEST(WearTest, CouplingRequiresFaultInjection)
{
    OpsConfig oc;
    oc.wear.breakdown_gain = 1.0; // but oc.faults.enabled == false
    EXPECT_THROW(validate(oc, 1), FatalError);
}

//===========================================================================
// FleetDispatcher
//===========================================================================

TEST(DispatcherTest, PolicyNamesRoundTrip)
{
    for (auto p : {DispatchPolicy::RoundRobin, DispatchPolicy::LeastQueued,
                   DispatchPolicy::AvailabilityAware})
        EXPECT_EQ(parseDispatchPolicy(to_string(p)), p);
    EXPECT_THROW(parseDispatchPolicy("random"), FatalError);
    DispatchConfig bad;
    bad.overcommit = 0;
    EXPECT_THROW(validate(bad), FatalError);
}

TEST(DispatcherTest, RoundRobinIsByteIdenticalToTheFleet)
{
    const core::DhlConfig cfg = core::defaultConfig();
    const double dataset = 11.0 * cfg.cartCapacity().value();
    core::BulkRunOptions opts;
    opts.include_read_time = true;

    core::DhlFleet plain(cfg, 3);
    const auto expected = plain.runBulkTransfer(dataset, opts);

    OpsConfig oc; // everything off, RoundRobin policy
    FleetOps fo(cfg, 3, oc);
    const auto r = fo.runBulkTransfer(dataset, opts);
    expectIdentical(r.base, expected);
    EXPECT_EQ(r.reroutes, 0u);
    EXPECT_EQ(r.maintenance_windows, 0u);
    EXPECT_EQ(r.plant_outages, 0u);
    EXPECT_DOUBLE_EQ(r.fleet_availability, 1.0);
    EXPECT_EQ(fo.maintenance(), nullptr);
    EXPECT_EQ(fo.correlated(), nullptr);
}

TEST(DispatcherTest, RoundRobinIsByteIdenticalUnderFaults)
{
    // The strong form of the contract: with per-track fault injection
    // running (outages, parked trips, breakdowns), the ops path must
    // still replay DhlFleet::runBulkTransfer event for event.
    const core::DhlConfig cfg = core::defaultConfig();
    const double dataset = 12.0 * cfg.cartCapacity().value();
    faults::FaultConfig fc;
    fc.enabled = true;
    fc.lim_mtbf = 0.05;
    fc.lim_mttr = 0.01;
    fc.track_mtbf = 0.1;
    fc.track_mttr = 0.012;
    fc.station_mtbf = 0.03;
    fc.station_mttr = 0.008;
    fc.cart_repair_per_trip = 0.05;
    fc.cart_repair_hours = 0.002;
    fc.seed = 21;

    core::DhlFleet plain(cfg, 2);
    core::BulkRunOptions opts;
    opts.faults = fc;
    const auto expected = plain.runBulkTransfer(dataset, opts);

    OpsConfig oc;
    oc.faults = fc;
    FleetOps fo(cfg, 2, oc);
    const auto r = fo.runBulkTransfer(dataset);
    expectIdentical(r.base, expected);
    EXPECT_LT(r.fleet_availability, 1.0) << "outages were observed";
}

TEST(DispatcherTest, LeastQueuedMatchesRoundRobinOnAHealthyFleet)
{
    // Homogeneous tracks, no faults: pulling from one queue lands on
    // the same ceil(n/k) split as the static assignment.
    const core::DhlConfig cfg = core::defaultConfig();
    const double dataset = 10.0 * cfg.cartCapacity().value();

    OpsConfig rr;
    FleetOps fleet_rr(cfg, 3, rr);
    const auto r_rr = fleet_rr.runBulkTransfer(dataset);

    OpsConfig lq;
    lq.dispatch.policy = DispatchPolicy::LeastQueued;
    FleetOps fleet_lq(cfg, 3, lq);
    const auto r_lq = fleet_lq.runBulkTransfer(dataset);

    EXPECT_EQ(r_lq.base.carts, r_rr.base.carts);
    EXPECT_EQ(r_lq.base.launches, r_rr.base.launches);
    EXPECT_NEAR(r_lq.base.total_time, r_rr.base.total_time, 1e-9);
}

TEST(DispatcherTest, AvailabilityAwareReroutesOffABlockedTrack)
{
    // Track 1 enters a long maintenance window mid-run.  Under
    // round-robin its pre-assigned share queues behind the window;
    // availability-aware drains the queued open, re-routes the jobs,
    // and only the single in-flight trip rides out the downtime — so
    // it must finish sooner with a lower open-latency tail.
    const core::DhlConfig cfg = core::defaultConfig(); // one station
    const double dataset = 12.0 * cfg.cartCapacity().value();
    const MaintenanceWindow window{10.0, 4000.0, 0.0, 1};

    auto run = [&](DispatchPolicy policy) {
        OpsConfig oc;
        oc.dispatch.policy = policy;
        oc.maintenance.windows.push_back(window);
        FleetOps fo(cfg, 2, oc);
        return fo.runBulkTransfer(dataset);
    };
    const auto rr = run(DispatchPolicy::RoundRobin);
    const auto aa = run(DispatchPolicy::AvailabilityAware);

    EXPECT_EQ(aa.base.carts, 12u);
    EXPECT_GE(aa.reroutes, 1u) << "the drained open was re-routed";
    EXPECT_GE(aa.drains, 1u);
    EXPECT_EQ(aa.maintenance_windows, 1u);
    EXPECT_EQ(rr.reroutes, 0u) << "round-robin never re-routes";
    EXPECT_LT(aa.base.total_time, rr.base.total_time);
    EXPECT_LT(aa.fleet_availability, 1.0);
}

TEST(DispatcherTest, AdmissionControlDefersLowPriorityWhileDegraded)
{
    const core::DhlConfig cfg = core::defaultConfig();
    const double dataset = 8.0 * cfg.cartCapacity().value();

    OpsConfig oc;
    oc.dispatch.policy = DispatchPolicy::AvailabilityAware;
    oc.dispatch.min_priority_degraded = 1;
    oc.maintenance.windows.push_back({5.0, 100.0, 0.0, 1});
    FleetOps fo(cfg, 2, oc);

    std::vector<core::RequestMeta> meta(8);
    for (std::size_t j = 0; j < meta.size(); ++j)
        meta[j].priority = static_cast<int>(j % 2);
    const auto r = fo.runBulkTransfer(dataset, {}, meta);

    EXPECT_EQ(r.base.carts, 8u) << "deferred jobs still complete";
    EXPECT_GT(r.deferrals, 0u)
        << "priority-0 jobs were deferred while degraded";
}

TEST(DispatcherTest, FullStackReplaysExactly)
{
    // Everything on at once: independent faults, correlated plants, a
    // periodic window, wear coupling, availability-aware dispatch.
    // Two identical builds must produce bit-identical results.
    const core::DhlConfig cfg = core::defaultConfig();
    const double dataset = 10.0 * cfg.cartCapacity().value();
    auto run = [&] {
        OpsConfig oc;
        oc.dispatch.policy = DispatchPolicy::AvailabilityAware;
        oc.maintenance.windows.push_back({20.0, 10.0, 60.0, -1});
        oc.domains.enabled = true;
        oc.domains.domain_size = 2;
        oc.domains.plant_mtbf = 0.02;
        oc.domains.plant_mttr = 0.005;
        oc.domains.seed = 5;
        oc.faults = quietFaults(0.02);
        oc.wear.breakdown_gain = 10.0;
        oc.wear.station_gain = 10.0;
        FleetOps fo(cfg, 4, oc);
        return fo.runBulkTransfer(dataset);
    };
    const auto a = run();
    const auto b = run();
    expectIdentical(a.base, b.base);
    EXPECT_EQ(a.reroutes, b.reroutes);
    EXPECT_EQ(a.drains, b.drains);
    EXPECT_EQ(a.deferrals, b.deferrals);
    EXPECT_EQ(a.maintenance_windows, b.maintenance_windows);
    EXPECT_EQ(a.plant_outages, b.plant_outages);
    EXPECT_EQ(a.open_latency_mean, b.open_latency_mean);
    EXPECT_EQ(a.open_latency_p99, b.open_latency_p99);
    EXPECT_EQ(a.fleet_availability, b.fleet_availability);
}

TEST(DispatcherTest, AvailabilityAwareNeedsFaultRegistries)
{
    core::DhlFleet fleet(core::defaultConfig(), 2);
    DispatchConfig dc;
    dc.policy = DispatchPolicy::AvailabilityAware;
    EXPECT_THROW(FleetDispatcher(fleet, dc), FatalError);
    fleet.ensureFaultStates();
    EXPECT_NO_THROW(FleetDispatcher(fleet, dc));
}
