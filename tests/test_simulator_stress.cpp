/**
 * @file
 * Randomized differential stress test of the DES kernel.
 *
 * Drives ~100k interleaved schedule / cancel / runUntil / step
 * operations against a deliberately naive reference queue (a flat
 * vector scanned linearly) and asserts that the kernel fires the same
 * events in the same order (FIFO within a timestamp), reports the same
 * pendingEvents(), and keeps the same stat counters.  This pins the
 * semantics of the slot-registry/generation-handle implementation to
 * the observable contract.
 *
 * The file also overrides global operator new/delete with counters to
 * assert the acceptance criterion that the steady-state schedule→fire
 * path performs zero heap allocations for SBO-sized actions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/random.hpp"
#include "sim/simulator.hpp"

using dhl::Rng;
using dhl::sim::EventHandle;
using dhl::sim::Simulator;

namespace {

std::atomic<std::int64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/**
 * Reference model: events in a plain vector, popped by linear scan for
 * the (time, seq) minimum — obviously correct, obviously slow.
 */
class ReferenceQueue
{
  public:
    struct Event
    {
        double when;
        std::uint64_t seq;
        int token;
        bool cancelled = false;
    };

    std::uint64_t
    schedule(double now, double delay, int token)
    {
        events_.push_back(Event{now + delay, next_seq_, token});
        return next_seq_++;
    }

    bool
    cancel(std::uint64_t seq)
    {
        for (auto &e : events_) {
            if (e.seq == seq && !e.cancelled) {
                e.cancelled = true;
                return true;
            }
        }
        return false;
    }

    std::size_t
    pending() const
    {
        std::size_t n = 0;
        for (const auto &e : events_)
            n += e.cancelled ? 0 : 1;
        return n;
    }

    /** Pop the earliest live event at time <= until; false if none. */
    bool
    popUpTo(double until, Event &out)
    {
        auto best = events_.end();
        for (auto it = events_.begin(); it != events_.end(); ++it) {
            if (it->cancelled)
                continue;
            if (best == events_.end() || it->when < best->when ||
                (it->when == best->when && it->seq < best->seq)) {
                best = it;
            }
        }
        if (best == events_.end() || best->when > until)
            return false;
        out = *best;
        events_.erase(best);
        return true;
    }

  private:
    std::vector<Event> events_;
    std::uint64_t next_seq_ = 0;
};

struct Fired
{
    double when;
    int token;

    bool
    operator==(const Fired &o) const
    {
        return when == o.when && token == o.token;
    }
};

TEST(SimulatorStress, DifferentialVsReferenceQueue)
{
    Rng rng(20240815);
    Simulator sim;
    ReferenceQueue ref;

    std::vector<Fired> fired_sim;
    std::vector<Fired> fired_ref;

    // Live handles: kernel handle + reference seq + token, kept in
    // lockstep so a random cancel hits the same event in both models.
    struct Live
    {
        EventHandle handle;
        std::uint64_t ref_seq;
    };
    std::vector<Live> live;

    std::uint64_t scheduled = 0, cancelled = 0;
    int next_token = 0;

    const int kOps = 100000;
    for (int op = 0; op < kOps; ++op) {
        const auto kind = static_cast<int>(rng.uniformInt(0, 99));
        if (kind < 55) {
            // Schedule; delays collide on a coarse grid so FIFO
            // tie-breaking is exercised constantly.
            const double delay =
                static_cast<double>(rng.uniformInt(0, 40)) * 0.25;
            const int token = next_token++;
            const EventHandle h = sim.schedule(
                delay, [token, &fired_sim, &sim] {
                    fired_sim.push_back(Fired{sim.now(), token});
                });
            live.push_back(Live{h, ref.schedule(sim.now(), delay, token)});
            ++scheduled;
        } else if (kind < 75) {
            // Cancel a random outstanding handle (may already have
            // fired — both models must agree on the outcome).
            if (live.empty())
                continue;
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            const bool ok_sim = sim.cancel(live[idx].handle);
            const bool ok_ref = ref.cancel(live[idx].ref_seq);
            ASSERT_EQ(ok_sim, ok_ref) << "cancel divergence at op " << op;
            if (ok_sim)
                ++cancelled;
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else if (kind < 95) {
            // Advance a random amount of time.
            const double horizon =
                sim.now() + rng.uniform(0.0, 3.0);
            sim.runUntil(horizon);
            ReferenceQueue::Event e;
            while (ref.popUpTo(horizon, e))
                fired_ref.push_back(Fired{e.when, e.token});
            ASSERT_EQ(fired_sim.size(), fired_ref.size())
                << "fire-count divergence at op " << op;
        } else {
            // Execute a bounded number of events.
            const auto max_events =
                static_cast<std::uint64_t>(rng.uniformInt(1, 5));
            const std::uint64_t n = sim.step(max_events);
            for (std::uint64_t k = 0; k < n; ++k) {
                ReferenceQueue::Event e;
                ASSERT_TRUE(ref.popUpTo(
                    std::numeric_limits<double>::infinity(), e));
                fired_ref.push_back(Fired{e.when, e.token});
            }
        }
        if ((op & 1023) == 0) {
            ASSERT_EQ(sim.pendingEvents(), ref.pending())
                << "pending divergence at op " << op;
        }
    }

    // Drain both models completely.
    sim.run();
    ReferenceQueue::Event e;
    while (ref.popUpTo(std::numeric_limits<double>::infinity(), e))
        fired_ref.push_back(Fired{e.when, e.token});

    ASSERT_EQ(fired_sim.size(), fired_ref.size());
    for (std::size_t i = 0; i < fired_sim.size(); ++i) {
        ASSERT_EQ(fired_sim[i], fired_ref[i])
            << "firing-order divergence at index " << i << ": sim={"
            << fired_sim[i].when << "," << fired_sim[i].token << "} ref={"
            << fired_ref[i].when << "," << fired_ref[i].token << "}";
    }
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(ref.pending(), 0u);

    // Stat counters match the reference bookkeeping.
    const auto *stat_scheduled = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_scheduled"));
    const auto *stat_executed = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_executed"));
    const auto *stat_cancelled = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_cancelled"));
    ASSERT_NE(stat_scheduled, nullptr);
    ASSERT_NE(stat_executed, nullptr);
    ASSERT_NE(stat_cancelled, nullptr);
    EXPECT_EQ(stat_scheduled->value(), scheduled);
    EXPECT_EQ(stat_cancelled->value(), cancelled);
    EXPECT_EQ(stat_executed->value(), scheduled - cancelled);
    EXPECT_EQ(sim.eventsExecuted(), scheduled - cancelled);
    EXPECT_EQ(fired_sim.size(), scheduled - cancelled);
}

TEST(SimulatorStress, SteadyStateScheduleFirePathDoesNotAllocate)
{
    Simulator sim;
    std::uint64_t fired = 0;
    const std::size_t n = 4096;

    // Warm up: grows the slot registry, heap storage and free list to
    // steady-state capacity.
    for (std::size_t i = 0; i < n; ++i) {
        sim.schedule(static_cast<double>(i % 17) * 0.5,
                     [&fired] { ++fired; });
    }
    sim.run();
    ASSERT_EQ(fired, n);

    // Steady state: schedule→fire with SBO-sized captures must not
    // touch the heap at all.
    const std::int64_t before = g_allocs.load();
    for (std::size_t i = 0; i < n; ++i) {
        sim.schedule(static_cast<double>(i % 17) * 0.5,
                     [&fired] { ++fired; });
    }
    sim.run();
    EXPECT_EQ(g_allocs.load(), before)
        << "steady-state schedule→fire path allocated";
    EXPECT_EQ(fired, 2 * n);
}

TEST(SimulatorStress, StepClearsStaleStopRequest)
{
    // A stop() from a previous run must not leak into step() — the
    // semantics fix for the old behaviour where stopped_ persisted.
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2.0, [&] { ++fired; });
    sim.schedule(3.0, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.stopRequested());

    // step() clears the stale request and executes.
    EXPECT_EQ(sim.step(1), 1u);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.stopRequested());
}

TEST(SimulatorStress, StopDuringStepEndsBatchEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2.0, [&] { ++fired; });
    EXPECT_EQ(sim.step(10), 1u); // stop() ends the batch
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.stopRequested());
    EXPECT_EQ(sim.pendingEvents(), 1u);
    EXPECT_EQ(sim.step(10), 1u); // cleared on entry; resumes
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorStress, HandlesStayUniqueAcrossSlotReuse)
{
    // A fired event's slot is recycled; the old handle must never
    // cancel the new occupant (generation tagging).
    Simulator sim;
    std::vector<EventHandle> old_handles;
    for (int round = 0; round < 50; ++round) {
        int fired = 0;
        std::vector<EventHandle> fresh;
        for (int i = 0; i < 20; ++i)
            fresh.push_back(sim.schedule(0.5, [&fired] { ++fired; }));
        // Stale handles from previous rounds target recycled slots.
        for (EventHandle h : old_handles)
            EXPECT_FALSE(sim.cancel(h));
        sim.run();
        EXPECT_EQ(fired, 20);
        old_handles = std::move(fresh);
    }
}

} // namespace
