/**
 * @file
 * Unit tests for the materials cost model — the full Table VIII
 * regression.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "cost/cost_model.hpp"

using namespace dhl::cost;

TEST(RailCostTest, TableViiiA)
{
    CostModel m;
    // Distance: 100 / 500 / 1000 m.
    struct Row { double d, alu, rail, tube, total; };
    const Row rows[] = {
        {100, 117, 116, 500, 733},
        {500, 585, 580, 2500, 3665},
        {1000, 1170, 1160, 5000, 7330},
    };
    for (const auto &r : rows) {
        const RailCost c = m.railCost(r.d);
        EXPECT_NEAR(c.aluminium, r.alu, r.alu * 0.01) << r.d;
        EXPECT_NEAR(c.pvc_rail, r.rail, r.rail * 0.01) << r.d;
        EXPECT_NEAR(c.pvc_tube, r.tube, r.tube * 0.01) << r.d;
        EXPECT_NEAR(c.total(), r.total, r.total * 0.01) << r.d;
    }
}

TEST(LimCostTest, TableViiiB)
{
    CostModel m;
    struct Row { double v, copper, total; };
    const Row rows[] = {
        {100, 792, 8792},
        {200, 2904, 10904},
        {300, 6512, 14512},
    };
    for (const auto &r : rows) {
        const LimCost c = m.limCost(r.v);
        EXPECT_NEAR(c.copper, r.copper, 0.5) << r.v;
        EXPECT_DOUBLE_EQ(c.vfd, 8000.0);
        EXPECT_NEAR(c.total(), r.total, 0.5) << r.v;
    }
}

TEST(TotalCostTest, TableViiiC)
{
    CostModel m;
    struct Row { double d, v, usd; };
    const Row rows[] = {
        {100, 100, 9525},  {100, 200, 11637},  {100, 300, 15245},
        {500, 100, 12457}, {500, 200, 14569},  {500, 300, 18177},
        {1000, 100, 16122}, {1000, 200, 18234}, {1000, 300, 21842},
    };
    for (const auto &r : rows) {
        EXPECT_NEAR(m.totalCost(r.d, r.v), r.usd, r.usd * 0.01)
            << r.d << " m @ " << r.v << " m/s";
    }
}

TEST(TotalCostTest, ComparableToA400GSwitch)
{
    // The paper's take-away: a DHL costs ~$20k, the price of a large
    // 400 Gbit/s switch.
    CostModel m;
    EXPECT_LT(m.totalCost(1000, 300), 25000.0);
    EXPECT_GT(m.totalCost(100, 100), 5000.0);
}

TEST(CopperMassTest, InterpolationBetweenDesignPoints)
{
    CostModel m;
    const double at150 = m.limCopperMass(150.0);
    const double lo = m.limCopperMass(100.0);
    const double hi = m.limCopperMass(200.0);
    EXPECT_NEAR(at150, 0.5 * (lo + hi), 1e-9);
    // Monotone increasing in speed.
    EXPECT_LT(lo, hi);
    EXPECT_LT(hi, m.limCopperMass(300.0));
    // Extrapolation beyond 300 m/s keeps growing.
    EXPECT_GT(m.limCopperMass(350.0), m.limCopperMass(300.0));
}

TEST(CostModelTest, CustomPricesPropagate)
{
    MaterialPrices pricey;
    pricey.copper_per_kg = 17.16; // doubled
    CostModel base;
    CostModel expensive(pricey);
    // Copper *mass* is derived from the paper's costs at the paper's
    // price, so doubling the price doubles the copper line item.
    EXPECT_NEAR(expensive.limCost(200.0).copper,
                2.0 * base.limCost(200.0).copper, 1.0);
}

TEST(CostModelTest, Validation)
{
    CostModel m;
    EXPECT_THROW(m.railCost(0.0), dhl::FatalError);
    EXPECT_THROW(m.railCost(-5.0), dhl::FatalError);
    EXPECT_THROW(m.limCopperMass(0.0), dhl::FatalError);
    MaterialPrices bad;
    bad.pvc_per_kg = 0.0;
    EXPECT_THROW(CostModel{bad}, dhl::FatalError);
    RailMaterials badm;
    badm.ring_mass = 0.0;
    EXPECT_THROW(CostModel(MaterialPrices{}, badm), dhl::FatalError);
}
