/**
 * @file
 * Tests for the compile-time dimensional quantity layer
 * (common/quantity.hpp): arithmetic, dimension algebra, comparisons,
 * UDLs, conversions, and the formatting overloads.
 *
 * The *negative* side of the contract — `Seconds + Joules`,
 * bits-assigned-to-bytes, and implicit double construction must not
 * compile — is pinned by the try_compile checks in
 * tests/compile_fail/CMakeLists.txt.
 */

#include "common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/units.hpp"

namespace dhl {
namespace {

using namespace qty::literals;

TEST(Quantity, IsExactlyOneDoubleWide)
{
    static_assert(sizeof(qty::Seconds) == sizeof(double));
    static_assert(sizeof(qty::Joules) == sizeof(double));
    static_assert(sizeof(qty::BytesPerSecond) == sizeof(double));
    static_assert(std::is_trivially_copyable_v<qty::Watts>);
}

TEST(Quantity, DefaultConstructsToZero)
{
    qty::Joules e;
    EXPECT_EQ(e.value(), 0.0);
}

TEST(Quantity, SameDimensionArithmetic)
{
    const qty::Seconds a{3.0};
    const qty::Seconds b{4.5};
    EXPECT_DOUBLE_EQ((a + b).value(), 7.5);
    EXPECT_DOUBLE_EQ((b - a).value(), 1.5);
    EXPECT_DOUBLE_EQ((-a).value(), -3.0);
    EXPECT_DOUBLE_EQ((+a).value(), 3.0);

    qty::Seconds acc{1.0};
    acc += a;
    EXPECT_DOUBLE_EQ(acc.value(), 4.0);
    acc -= b;
    EXPECT_DOUBLE_EQ(acc.value(), -0.5);
}

TEST(Quantity, ScalarScaling)
{
    const qty::Metres d{100.0};
    EXPECT_DOUBLE_EQ((d * 3.0).value(), 300.0);
    EXPECT_DOUBLE_EQ((3.0 * d).value(), 300.0);
    EXPECT_DOUBLE_EQ((d / 4.0).value(), 25.0);

    qty::Metres m{10.0};
    m *= 2.0;
    EXPECT_DOUBLE_EQ(m.value(), 20.0);
    m /= 5.0;
    EXPECT_DOUBLE_EQ(m.value(), 4.0);
}

TEST(Quantity, DimensionAlgebra)
{
    // v = d / t.
    const qty::MetresPerSecond v = qty::Metres{500.0} / qty::Seconds{2.5};
    EXPECT_DOUBLE_EQ(v.value(), 200.0);

    // E = P * t and P = E / t.
    const qty::Joules e = qty::Watts{100.0} * qty::Seconds{30.0};
    EXPECT_DOUBLE_EQ(e.value(), 3000.0);
    const qty::Watts p = e / qty::Seconds{60.0};
    EXPECT_DOUBLE_EQ(p.value(), 50.0);

    // Kinetic energy: kg * (m/s)^2 is J.
    const qty::Joules ke =
        0.5 * (qty::Kilograms{0.282} * (200.0_mps * 200.0_mps));
    EXPECT_DOUBLE_EQ(ke.value(), 0.5 * 0.282 * 200.0 * 200.0);

    // The §V-E break-even: J * (B/s) / W is B.
    const qty::Bytes be =
        qty::Joules{1000.0} * qty::BytesPerSecond{5e10} / qty::Watts{100.0};
    EXPECT_DOUBLE_EQ(be.value(), 5e11);

    // Pressure times volume is energy.
    const qty::Joules pv = qty::Pascals{101325.0} * qty::CubicMetres{2.0};
    EXPECT_DOUBLE_EQ(pv.value(), 202650.0);
}

TEST(Quantity, SameDimensionRatioIsPlainDouble)
{
    const double speedup = qty::Seconds{580000.0} / qty::Seconds{290.0};
    EXPECT_DOUBLE_EQ(speedup, 2000.0);
    static_assert(
        std::is_same_v<decltype(qty::Joules{1.0} / qty::Joules{2.0}),
                       double>);
}

TEST(Quantity, DimensionlessConvertsImplicitly)
{
    const qty::Dimensionless ratio{0.75};
    const double r = ratio;
    EXPECT_DOUBLE_EQ(r, 0.75);
}

TEST(Quantity, Comparisons)
{
    const qty::Bytes small{1e12};
    const qty::Bytes big{29e15};
    EXPECT_TRUE(small < big);
    EXPECT_TRUE(big > small);
    EXPECT_TRUE(small <= small);
    EXPECT_TRUE(small >= small);
    EXPECT_TRUE(small == qty::Bytes{1e12});
    EXPECT_TRUE(small != big);
}

TEST(Quantity, MathHelpers)
{
    EXPECT_DOUBLE_EQ(qty::abs(qty::Joules{-5.0}).value(), 5.0);
    EXPECT_DOUBLE_EQ(
        qty::min(qty::Seconds{2.0}, qty::Seconds{3.0}).value(), 2.0);
    EXPECT_DOUBLE_EQ(
        qty::max(qty::Seconds{2.0}, qty::Seconds{3.0}).value(), 3.0);

    // sqrt(L * a) is a speed; sqrt(L / a) is a time (the triangular
    // profile formulas).
    const qty::MetresPerSecond v_peak =
        qty::sqrt(qty::Metres{100.0} * qty::MetresPerSecondSquared{1000.0});
    EXPECT_DOUBLE_EQ(v_peak.value(), std::sqrt(100.0 * 1000.0));
    const qty::Seconds t =
        qty::sqrt(qty::Metres{100.0} / qty::MetresPerSecondSquared{1000.0});
    EXPECT_DOUBLE_EQ(t.value(), std::sqrt(0.1));
}

TEST(Quantity, UserDefinedLiterals)
{
    EXPECT_DOUBLE_EQ((5.0_s).value(), 5.0);
    EXPECT_DOUBLE_EQ((120.0_ms).value(), 0.12);
    EXPECT_DOUBLE_EQ((1.0_h).value(), 3600.0);
    EXPECT_DOUBLE_EQ((500.0_m).value(), 500.0);
    EXPECT_DOUBLE_EQ((200.0_mps).value(), 200.0);
    EXPECT_DOUBLE_EQ((1000.0_mps2).value(), 1000.0);
    EXPECT_DOUBLE_EQ((282.0_g).value(), 0.282);
    EXPECT_DOUBLE_EQ((15.0_kJ).value(), 15000.0);
    EXPECT_DOUBLE_EQ((13.92_MJ).value(), 13.92e6);
    EXPECT_DOUBLE_EQ((210.0_kW).value(), 210000.0);
    EXPECT_DOUBLE_EQ((29.0_PB).value(), 29e15);
    EXPECT_DOUBLE_EQ((256.0_TB).value(), 256e12);
    EXPECT_DOUBLE_EQ((1.0_mbar).value(), 100.0);

    // The paper's convention note: 29 PB over 400 Gbit/s is 580,000 s.
    const qty::Seconds xfer =
        29.0_PB / qty::toBytesPerSecond(400.0_Gbps);
    EXPECT_DOUBLE_EQ(xfer.value(), 580000.0);
}

TEST(Quantity, BitsBytesConversionsAreExplicitAndExact)
{
    EXPECT_DOUBLE_EQ(qty::toBytes(qty::Bits{8.0}).value(), 1.0);
    EXPECT_DOUBLE_EQ(qty::toBits(qty::Bytes{1.0}).value(), 8.0);
    EXPECT_DOUBLE_EQ(qty::toBytesPerSecond(400.0_Gbps).value(), 5e10);
    EXPECT_DOUBLE_EQ(
        qty::toBitsPerSecond(qty::BytesPerSecond{5e10}).value(), 400e9);
}

TEST(Quantity, TypedConstants)
{
    EXPECT_DOUBLE_EQ(qty::kGravity.value(), units::kGravity);
    EXPECT_DOUBLE_EQ(qty::kAtmosphere.value(), units::kAtmospherePa);
}

TEST(Quantity, FormattingOverloadsMatchDoubleVersions)
{
    EXPECT_EQ(units::formatBytes(29.0_PB), units::formatBytes(29e15));
    EXPECT_EQ(units::formatDuration(8.6_s), units::formatDuration(8.6));
    EXPECT_EQ(units::formatEnergy(13.92_MJ), units::formatEnergy(13.92e6));
    EXPECT_EQ(units::formatPower(1.75_kW), units::formatPower(1750.0));
    EXPECT_EQ(units::formatBandwidth(qty::BytesPerSecond{30e12}),
              units::formatBandwidth(30e12));
}

TEST(Quantity, ReadoutHelpers)
{
    EXPECT_DOUBLE_EQ(units::toHours(2.0_h), 2.0);
    EXPECT_DOUBLE_EQ(units::toDays(86400.0_s), 1.0);
    EXPECT_DOUBLE_EQ(units::toKilojoules(15.0_kJ), 15.0);
    EXPECT_DOUBLE_EQ(units::toMegajoules(13.92_MJ), 13.92);
    EXPECT_DOUBLE_EQ(units::toKilowatts(22.0_kW), 22.0);
    EXPECT_DOUBLE_EQ(
        units::toGigabitsPerSecond(qty::BytesPerSecond{5e10}), 400.0);
    // Same operation order as the double overload: bit-identical.
    EXPECT_EQ(units::gbPerJoule(29.0_PB, 13.92_MJ),
              units::gbPerJoule(29e15, 13.92e6));
}

TEST(Quantity, ConstexprThroughout)
{
    constexpr qty::Joules e = qty::Watts{2.0} * qty::Seconds{3.0};
    static_assert(e.value() == 6.0);
    constexpr double ratio = qty::Metres{10.0} / qty::Metres{4.0};
    static_assert(ratio == 2.5);
    constexpr qty::Bytes cap = 32.0 * 8.0_TB;
    static_assert(cap.value() == 256e12);
}

} // namespace
} // namespace dhl
