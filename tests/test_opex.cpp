/**
 * @file
 * Unit tests for the TCO / operational cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "cost/opex.hpp"

using namespace dhl;
using namespace dhl::cost;
namespace u = dhl::units;
namespace qty = dhl::qty;

namespace {

TransferDuty
dailyDuty()
{
    TransferDuty duty{};
    duty.bytes_per_transfer = u::petabytes(2);
    duty.transfers_per_day = 4.0;
    duty.years = 5.0;
    return duty;
}

} // namespace

TEST(EnergyCostTest, KwhConversion)
{
    TcoModel m;
    // 1 kWh = 3.6 MJ at $0.10.
    EXPECT_NEAR(m.energyCost(qty::Joules{3.6e6}), 0.10, 1e-12);
    EXPECT_DOUBLE_EQ(m.energyCost(qty::Joules{0.0}), 0.0);
    EXPECT_THROW(m.energyCost(qty::Joules{-1.0}), dhl::FatalError);
}

TEST(TcoTest, DefaultDutyFavoursDhl)
{
    TcoModel m;
    const auto cmp = m.compare(core::defaultConfig(),
                               network::findRoute("C"), dailyDuty());
    // DHL capex ($14.6k) is already below the switch ($20k), and its
    // energy bill is ~87x smaller -> payback is immediate.
    EXPECT_LT(cmp.dhl.capex, cmp.network.capex);
    EXPECT_LT(cmp.dhl.opex_per_year, cmp.network.opex_per_year);
    EXPECT_LT(cmp.dhl.total, cmp.network.total);
    EXPECT_DOUBLE_EQ(cmp.payback_days, 0.0);
}

TEST(TcoTest, EnergyRatioMatchesAnalyticalModel)
{
    TcoModel m;
    const auto cmp = m.compare(core::defaultConfig(),
                               network::findRoute("C"), dailyDuty());
    const core::AnalyticalModel model(core::defaultConfig());
    const auto rc = model.compareBulk(qty::Bytes{dailyDuty().bytes_per_transfer},
                                      network::findRoute("C"));
    EXPECT_NEAR(cmp.network.energy_per_day / cmp.dhl.energy_per_day,
                rc.energy_reduction, rc.energy_reduction * 1e-9);
}

TEST(TcoTest, ExpensiveDhlBuildPaysBackViaOpex)
{
    // Inflate the DHL capex above the switch price; the energy gap
    // must then determine a finite positive payback horizon.
    OpexPrices prices;
    prices.network_switch_capex = 10000.0; // cheaper switch
    TcoModel m(prices);
    const auto cmp = m.compare(core::defaultConfig(),
                               network::findRoute("C"), dailyDuty());
    EXPECT_GT(cmp.dhl.capex, cmp.network.capex);
    EXPECT_GT(cmp.payback_days, 0.0);
    EXPECT_TRUE(std::isfinite(cmp.payback_days));
    // Sanity: capex gap / daily saving.
    const double daily_saving =
        m.energyCost(cmp.network.energy_per_day) -
        m.energyCost(cmp.dhl.energy_per_day);
    EXPECT_NEAR(cmp.payback_days,
                (cmp.dhl.capex - cmp.network.capex) / daily_saving,
                1e-9);
}

TEST(TcoTest, NoPaybackWhenDhlBurnsMore)
{
    // An absurd duty: one tiny transfer a day; make the network free
    // to run so the expensive DHL build never pays back.
    OpexPrices prices;
    prices.network_switch_capex = 100.0;
    TcoModel m(prices);
    TransferDuty duty{};
    duty.bytes_per_transfer = u::gigabytes(1);
    duty.transfers_per_day = 1.0;
    duty.years = 1.0;
    const auto cmp = m.compare(core::makeConfig(300, 1000, 64),
                               network::findRoute("A0"), duty);
    EXPECT_GT(cmp.dhl.capex, cmp.network.capex);
    // DHL still wins on energy per transfer here (full cart shot vs
    // 0.16 s of A0)... so verify it reports either finite or infinite
    // consistently with the daily energy ordering.
    if (cmp.network.energy_per_day > cmp.dhl.energy_per_day)
        EXPECT_TRUE(std::isfinite(cmp.payback_days));
    else
        EXPECT_TRUE(std::isinf(cmp.payback_days));
}

TEST(TcoTest, ScalesLinearlyWithDuty)
{
    TcoModel m;
    TransferDuty duty = dailyDuty();
    const auto base = m.compare(core::defaultConfig(),
                                network::findRoute("B"), duty);
    duty.transfers_per_day *= 2.0;
    const auto doubled = m.compare(core::defaultConfig(),
                                   network::findRoute("B"), duty);
    EXPECT_NEAR(doubled.dhl.energy_per_day.value(),
                2.0 * base.dhl.energy_per_day.value(), 1e-6);
    EXPECT_NEAR(doubled.network.opex_per_year,
                2.0 * base.network.opex_per_year, 1e-6);
}

TEST(TcoTest, Validation)
{
    TcoModel m;
    TransferDuty bad = dailyDuty();
    bad.bytes_per_transfer = 0.0;
    EXPECT_THROW(m.compare(core::defaultConfig(),
                           network::findRoute("A0"), bad),
                 dhl::FatalError);
    bad = dailyDuty();
    bad.years = 0.0;
    EXPECT_THROW(m.compare(core::defaultConfig(),
                           network::findRoute("A0"), bad),
                 dhl::FatalError);
    OpexPrices free_power;
    free_power.usd_per_kwh = 0.0;
    EXPECT_THROW(TcoModel{free_power}, dhl::FatalError);
}
