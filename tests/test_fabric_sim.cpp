/**
 * @file
 * Unit tests for the topology-level fabric simulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "network/fabric_sim.hpp"
#include "network/transfer.hpp"
#include "workloads/generator.hpp"

using namespace dhl::network;
using dhl::sim::Simulator;
namespace u = dhl::units;

TEST(FabricSimTest, BuildsOneLinkPerEdge)
{
    Simulator sim;
    FabricSim fabric(sim);
    // Default fat tree: 24 host links + 8 ToR-agg + 2 agg-core.
    EXPECT_EQ(fabric.numLinks(), 24u + 8u + 2u);
}

TEST(FabricSimTest, UncontendedCrossAisleMatchesRouteC)
{
    Simulator sim;
    FabricSim fabric(sim);
    const double bytes = u::terabytes(18); // 360 s on one link
    double finish = -1.0, energy = -1.0;
    fabric.startTransfer({0, 0, 0}, {1, 0, 0}, bytes,
                         [&](const FlowRecord &r) {
                             finish = r.finish_time;
                             energy = r.energy;
                         });
    sim.run();
    const TransferModel c(findRoute("C"));
    const auto expect = c.transfer(dhl::qty::Bytes{bytes});
    EXPECT_NEAR(finish, expect.time.value(), 1e-6);
    EXPECT_NEAR(energy, expect.energy.value(), expect.energy.value() * 1e-9);
}

TEST(FabricSimTest, SameRackFlowsAvoidTheUplink)
{
    Simulator sim;
    FabricSim fabric(sim);
    fabric.startTransfer({0, 0, 0}, {0, 0, 1}, 1e15);
    EXPECT_DOUBLE_EQ(fabric.torUplinkUtilisation(0, 0), 0.0);
    // A cross-rack flow does use it.
    fabric.startTransfer({0, 1, 0}, {0, 2, 0}, 1e15);
    EXPECT_GT(fabric.torUplinkUtilisation(0, 1), 0.9);
}

TEST(FabricSimTest, UplinkContentionSharesFairly)
{
    Simulator sim;
    FabricSim fabric(sim);
    // Two flows out of the same rack contend on the host links? No:
    // each host has its own link; they contend on the rack's single
    // uplink to the aggregation switch.
    std::vector<double> finishes;
    auto cb = [&](const FlowRecord &r) {
        finishes.push_back(r.finish_time);
    };
    const double bytes = u::terabytes(9); // 180 s alone
    fabric.startTransfer({0, 0, 0}, {0, 1, 0}, bytes, cb);
    fabric.startTransfer({0, 0, 1}, {0, 1, 1}, bytes, cb);
    sim.run();
    ASSERT_EQ(finishes.size(), 2u);
    // Shared uplink at half rate: both take ~360 s.
    EXPECT_NEAR(finishes[0], 360.0, 1e-6);
    EXPECT_NEAR(finishes[1], 360.0, 1e-6);
}

TEST(FabricSimTest, DisjointRacksDoNotInterfere)
{
    Simulator sim;
    FabricSim fabric(sim);
    double f1 = -1.0, f2 = -1.0;
    const double bytes = u::terabytes(9);
    fabric.startTransfer({0, 0, 0}, {0, 0, 1}, bytes,
                         [&](const FlowRecord &r) { f1 = r.finish_time; });
    fabric.startTransfer({1, 3, 0}, {1, 3, 1}, bytes,
                         [&](const FlowRecord &r) { f2 = r.finish_time; });
    sim.run();
    EXPECT_NEAR(f1, 180.0, 1e-6);
    EXPECT_NEAR(f2, 180.0, 1e-6);
}

TEST(FabricSimTest, GeneratedBackupsContendRealistically)
{
    // End-to-end: a generated backup stream rides the fabric between
    // fixed hosts; total energy must equal the per-transfer closed
    // form because the backups are spaced (no self-contention).
    Simulator sim;
    FabricSim fabric(sim);
    dhl::Rng rng(11);
    dhl::workloads::PeriodicBackupGenerator gen(u::hours(6),
                                                u::terabytes(9));
    const auto requests = gen.generate(u::days(1), rng);
    ASSERT_EQ(requests.size(), 4u);

    double energy = 0.0;
    for (const auto &req : requests) {
        sim.scheduleAt(req.at, [&fabric, &energy, bytes = req.bytes] {
            fabric.startTransfer({0, 0, 0}, {1, 2, 0}, bytes,
                                 [&energy](const FlowRecord &r) {
                                     energy += r.energy;
                                 });
        });
    }
    sim.run();
    const TransferModel c(findRoute("C"));
    const double expect =
        4.0 * c.transfer(dhl::qty::terabytes(9.0)).energy.value();
    EXPECT_NEAR(energy, expect, expect * 1e-9);
}

TEST(FabricSimTest, Validation)
{
    Simulator sim;
    EXPECT_THROW(FabricSim(sim, FatTreeConfig{}, 0.0), dhl::FatalError);
    FabricSim fabric(sim);
    EXPECT_THROW(fabric.torUplinkUtilisation(9, 9), dhl::FatalError);
    EXPECT_THROW(
        fabric.startTransfer({0, 0, 0}, {0, 0, 0}, 1e12),
        dhl::FatalError);
}
