/**
 * @file
 * Tests for the open-loop serving layer (serve/serving.hpp): request
 * conservation, overload shedding, per-stage availability, and the
 * checkpoint/restore equivalence property — a run restored from a
 * checkpoint must be byte-identical to one that was never interrupted,
 * including with fault injection, planned maintenance, and correlated
 * plant outages active.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "exp/slo.hpp"
#include "serve/serving.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

/** A small healthy two-track fleet under a ramp/hold/drain profile. */
serve::ServeConfig
smallConfig()
{
    serve::ServeConfig cfg;
    cfg.dhl = core::defaultConfig();
    cfg.tracks = 2;
    cfg.seed = 7;
    cfg.epoch = 300.0;
    cfg.carts_per_track = 2;
    cfg.max_pending = 64;
    cfg.policy = ops::DispatchPolicy::LeastQueued;
    workloads::RequestClass bulk{"bulk", 3.0, u::gigabytes(64), 0.0, 0};
    workloads::RequestClass urgent{"urgent", 1.0, u::gigabytes(16), 0.3,
                                   1};
    cfg.stages = {
        workloads::StageSpec{"ramp", 600.0, 0.0, 0.1, {bulk, urgent}},
        workloads::StageSpec{"hold", 600.0, 0.1, 0.1, {bulk, urgent}},
        workloads::StageSpec{"drain", 600.0, 0.1, 0.0, {bulk, urgent}},
    };
    return cfg;
}

/** The same fleet losing components: accelerated faults, one planned
 *  window, and a shared vacuum plant spanning both tracks. */
serve::ServeConfig
degradedConfig()
{
    serve::ServeConfig cfg = smallConfig();
    cfg.policy = ops::DispatchPolicy::AvailabilityAware;
    cfg.min_priority_degraded = 1;
    cfg.faults.enabled = true;
    cfg.faults.seed = 7;
    cfg.faults.lim_mtbf = 2.0;
    cfg.faults.lim_mttr = 0.1;
    cfg.faults.track_mtbf = 4.0;
    cfg.faults.track_mttr = 0.2;
    cfg.faults.station_mtbf = 3.0;
    cfg.faults.station_mttr = 0.05;
    cfg.faults.cart_repair_per_trip = 5e-3;
    cfg.faults.cart_repair_hours = 0.05;
    cfg.maintenance.windows.push_back({500.0, 200.0, 0.0, 1});
    cfg.domains.enabled = true;
    cfg.domains.domain_size = 2;
    cfg.domains.plant_mtbf = 0.5;
    cfg.domains.plant_mttr = 0.05;
    cfg.domains.seed = 7;
    return cfg;
}

/** Everything the equivalence property compares: formatted SLO rows,
 *  fleet totals, and the full trace. */
std::string
digest(serve::ServingSim &sim)
{
    std::ostringstream os;
    for (const exp::StageSlo &stage : sim.sloTable())
        for (const std::string &c : exp::sloRow(stage))
            os << c << "|";
    os << sim.totalServed() << "|" << sim.totalShed() << "|"
       << sim.totalLaunches() << "|" << sim.totalEnergy() << "|"
       << sim.now() << "|" << sim.epochsCompleted() << "\n";
    sim.trace().dump(os);
    return os.str();
}

} // namespace

TEST(ServingTest, ConservesRequestsWhenDone)
{
    serve::ServingSim sim(smallConfig());
    sim.run();
    EXPECT_TRUE(sim.done());
    EXPECT_EQ(sim.queueDepth(), 0u);
    EXPECT_EQ(sim.inFlight(), 0u);
    EXPECT_GE(sim.epochsCompleted(), 6u);

    // Every offered request was either served or shed, per stage.
    std::uint64_t offered = 0, served = 0, shed = 0;
    for (std::size_t k = 0; k < 3; ++k) {
        const auto &slo = sim.stageSlo(k);
        EXPECT_EQ(slo.offered(), slo.served() + slo.shed())
            << "stage " << k;
        offered += slo.offered();
        served += slo.served();
        shed += slo.shed();
    }
    EXPECT_GT(offered, 0u);
    EXPECT_EQ(sim.totalServed(), served);
    EXPECT_EQ(sim.totalShed(), shed);
    EXPECT_GT(sim.totalLaunches(), 0u);
    EXPECT_GT(sim.totalEnergy(), 0.0);
    // A healthy fleet sheds nothing at this load.
    EXPECT_EQ(shed, 0u);
}

TEST(ServingTest, DeterministicAcrossInstances)
{
    serve::ServingSim a(smallConfig());
    serve::ServingSim b(smallConfig());
    a.trace().enable();
    b.trace().enable();
    a.run();
    b.run();
    EXPECT_EQ(digest(a), digest(b));
}

TEST(ServingTest, OverloadShedsInsteadOfDroppingSilently)
{
    serve::ServeConfig cfg = smallConfig();
    cfg.tracks = 1;
    cfg.carts_per_track = 1;
    cfg.max_pending = 2;
    workloads::RequestClass big{"big", 1.0, u::terabytes(1024), 0.0, 0};
    cfg.stages = {workloads::StageSpec{"burst", 300.0, 0.5, 0.5, {big}}};
    serve::ServingSim sim(cfg);
    sim.run();
    EXPECT_TRUE(sim.done());
    const auto &slo = sim.stageSlo(0);
    EXPECT_EQ(slo.offered(), slo.served() + slo.shed());
    EXPECT_GT(slo.shed(), 0u);     // the bound actually bit
    EXPECT_GT(slo.deferred(), 0u); // and the backlog was visible
    EXPECT_GT(slo.served(), 0u);   // but admitted work still finished
}

TEST(ServingTest, MaintenanceWindowShowsUpInStageAvailability)
{
    serve::ServeConfig cfg = smallConfig();
    // Fleet-wide window [700, 1000): entirely inside the hold stage
    // [600, 1200), taking both tracks down for half the stage.
    cfg.maintenance.windows.push_back({700.0, 300.0, 0.0, -1});
    serve::ServingSim sim(cfg);
    sim.run();
    EXPECT_NEAR(sim.stageAvailability(0), 1.0, 1e-12);
    EXPECT_NEAR(sim.stageAvailability(1), 0.5, 1e-9);
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_GE(sim.stageAvailability(k), 0.0);
        EXPECT_LE(sim.stageAvailability(k), 1.0);
    }
}

TEST(ServingTest, CheckpointRestoreMatchesUninterruptedRun)
{
    // The tentpole property, with every stateful subsystem active:
    // component faults, a planned maintenance window, and correlated
    // plant outages.  Restoring a mid-run checkpoint into a freshly
    // built fleet and running to completion must be byte-identical to
    // the run that was never interrupted — SLO tables, totals, trace,
    // and a re-checkpoint.
    const serve::ServeConfig cfg = degradedConfig();

    serve::ServingSim oracle(cfg);
    oracle.trace().enable();
    oracle.run();
    EXPECT_GT(oracle.totalServed(), 0u);
    const std::string want = digest(oracle);
    std::ostringstream want_ck;
    oracle.checkpoint(want_ck);

    serve::ServingSim first(cfg);
    first.trace().enable();
    first.run(3); // stop at an interior drained epoch boundary
    EXPECT_FALSE(first.done());
    std::stringstream ck;
    first.checkpoint(ck);

    serve::ServingSim resumed(cfg);
    resumed.trace().enable(); // enablement is host state, not simulated
    resumed.restore(ck);
    EXPECT_EQ(resumed.epochsCompleted(), first.epochsCompleted());
    EXPECT_EQ(resumed.now(), first.now());
    resumed.run();

    EXPECT_EQ(digest(resumed), want);
    std::ostringstream got_ck;
    resumed.checkpoint(got_ck);
    EXPECT_EQ(got_ck.str(), want_ck.str());
}

TEST(ServingTest, CheckpointAtEveryBoundaryStaysIdentical)
{
    // Tighter variant of the property on the healthy fleet: hop
    // through a checkpoint at *every* epoch boundary.
    const serve::ServeConfig cfg = smallConfig();
    serve::ServingSim oracle(cfg);
    oracle.run();
    const std::string want = digest(oracle);

    auto hopper = std::make_unique<serve::ServingSim>(cfg);
    std::size_t hops = 0;
    while (hopper->stepEpoch()) {
        std::stringstream ck;
        hopper->checkpoint(ck);
        auto fresh = std::make_unique<serve::ServingSim>(cfg);
        fresh->restore(ck);
        hopper = std::move(fresh);
        ++hops;
    }
    EXPECT_GE(hops, 6u);
    EXPECT_EQ(digest(*hopper), want);
}

TEST(ServingTest, RestoreRejectsMismatchedConfig)
{
    serve::ServingSim donor(smallConfig());
    donor.run(1);
    std::stringstream ck;
    donor.checkpoint(ck);

    // Different fleet shape.
    serve::ServeConfig other = smallConfig();
    other.tracks = 3;
    serve::ServingSim wrong_fleet(other);
    EXPECT_THROW(wrong_fleet.restore(ck), FatalError);

    // Different load profile.
    ck.clear();
    ck.seekg(0);
    serve::ServeConfig reshaped = smallConfig();
    reshaped.stages[1].end_rate = 0.2;
    serve::ServingSim wrong_profile(reshaped);
    EXPECT_THROW(wrong_profile.restore(ck), FatalError);

    // Restore target must be freshly constructed.
    ck.clear();
    ck.seekg(0);
    serve::ServingSim stepped(smallConfig());
    stepped.run(1);
    EXPECT_THROW(stepped.restore(ck), FatalError);
}

TEST(ServingTest, ValidateRejectsNonsense)
{
    serve::ServeConfig cfg = smallConfig();
    cfg.tracks = 0;
    EXPECT_THROW(serve::validate(cfg), FatalError);
    cfg = smallConfig();
    cfg.epoch = 0.0;
    EXPECT_THROW(serve::validate(cfg), FatalError);
    cfg = smallConfig();
    cfg.stages.clear();
    EXPECT_THROW(serve::validate(cfg), FatalError);
    cfg = smallConfig();
    cfg.carts_per_track = 0;
    EXPECT_THROW(serve::validate(cfg), FatalError);
    cfg = smallConfig();
    cfg.max_pending = 0;
    EXPECT_THROW(serve::validate(cfg), FatalError);
}

TEST(ServingTest, DumpStatsReportsServeCounters)
{
    serve::ServingSim sim(smallConfig());
    sim.run();
    std::ostringstream os;
    sim.dumpStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("serve"), std::string::npos);
    EXPECT_NE(text.find("offered"), std::string::npos);
}
