/**
 * @file
 * Unit tests for the DhlSimulation facade.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/simulation.hpp"

using namespace dhl::core;
namespace u = dhl::units;

TEST(DhlSimulationTest, SerialSingleCart)
{
    DhlSimulation sim(defaultConfig());
    const auto r = sim.runBulkTransfer(u::terabytes(100));
    EXPECT_EQ(r.carts, 1u);
    EXPECT_EQ(r.launches, 2u); // out and back
    EXPECT_NEAR(r.total_time, 17.2, 1e-9);
    EXPECT_NEAR(r.total_energy, 2 * 15040.0, 20.0);
    EXPECT_EQ(r.ssd_failures, 0u);
}

TEST(DhlSimulationTest, SerialMatchesAnalyticalBulk)
{
    const DhlConfig cfg = defaultConfig();
    DhlSimulation sim(cfg);
    const double dataset = u::petabytes(2); // 8 carts
    const auto des = sim.runBulkTransfer(dataset);

    const AnalyticalModel model(cfg);
    const auto closed = model.bulk(dhl::qty::Bytes{dataset});
    EXPECT_EQ(des.launches, closed.total_trips);
    EXPECT_NEAR(des.total_time, closed.total_time.value(), 1e-6);
    EXPECT_NEAR(des.total_energy, closed.total_energy.value(), 1e-3);
}

TEST(DhlSimulationTest, ReadTimeAccountedWhenRequested)
{
    const DhlConfig cfg = defaultConfig();
    DhlSimulation plain(cfg);
    DhlSimulation reading(cfg);
    BulkRunOptions opts;
    opts.include_read_time = true;
    const double dataset = u::terabytes(512);

    const auto r0 = plain.runBulkTransfer(dataset);
    const auto r1 = reading.runBulkTransfer(dataset, opts);
    EXPECT_GT(r1.total_time, r0.total_time);
    EXPECT_DOUBLE_EQ(r1.bytes_read, dataset);
    EXPECT_DOUBLE_EQ(r0.bytes_read, 0.0);
}

TEST(DhlSimulationTest, PipelinedDualTrackBeatsSerial)
{
    DhlConfig cfg = defaultConfig();
    cfg.track_mode = TrackMode::DualTrack;
    cfg.docking_stations = 4;
    DhlSimulation serial(cfg);
    DhlSimulation pipe(cfg);
    BulkRunOptions opts;
    opts.pipelined = true;
    const double dataset = u::petabytes(2);

    const auto rs = serial.runBulkTransfer(dataset);
    const auto rp = pipe.runBulkTransfer(dataset, opts);
    EXPECT_LT(rp.total_time, rs.total_time);
    EXPECT_EQ(rp.launches, rs.launches); // same trips, overlapped
    EXPECT_NEAR(rp.total_energy, rs.total_energy, 1e-3);
}

TEST(DhlSimulationTest, FailureInjectionSurfacesInResult)
{
    auto prev = dhl::Logger::global().setLevel(dhl::LogLevel::Silent);
    DhlSimulation sim(defaultConfig(), 7);
    BulkRunOptions opts;
    opts.failure_per_trip = 0.05;
    const auto r = sim.runBulkTransfer(u::petabytes(1), opts);
    dhl::Logger::global().setLevel(prev);
    // 4 carts x 2 trips x 32 SSDs x 5 % ~ 13 expected failures.
    EXPECT_GT(r.ssd_failures, 0u);
    EXPECT_LT(r.ssd_failures, 60u);
}

TEST(DhlSimulationTest, LibraryCapacityEnforced)
{
    DhlConfig cfg = defaultConfig();
    cfg.library_slots = 2;
    DhlSimulation sim(cfg);
    EXPECT_THROW(sim.runBulkTransfer(u::petabytes(1)), dhl::FatalError);
}

TEST(DhlSimulationTest, StatsDumpContainsAllObjects)
{
    DhlSimulation sim(defaultConfig());
    sim.runBulkTransfer(u::terabytes(100));
    std::ostringstream os;
    sim.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("kernel.events_executed"), std::string::npos);
    EXPECT_NE(out.find("dhl.track.lim_energy"), std::string::npos);
    EXPECT_NE(out.find("dhl.library.docks"), std::string::npos);
    EXPECT_NE(out.find("dhl.station0.docks"), std::string::npos);
    EXPECT_NE(out.find("dhl.opens"), std::string::npos);
}

TEST(DhlSimulationTest, RejectsBadDataset)
{
    DhlSimulation sim(defaultConfig());
    EXPECT_THROW(sim.runBulkTransfer(0.0), dhl::FatalError);
}
