/**
 * @file
 * Unit tests for the DHL availability model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "dhl/reliability.hpp"

using namespace dhl::core;

TEST(ReliabilityConfigTest, Validation)
{
    ReliabilityConfig ok;
    EXPECT_NO_THROW(validate(ok));
    ReliabilityConfig bad;
    bad.lim_mtbf = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = ReliabilityConfig{};
    bad.track_mttr = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = ReliabilityConfig{};
    bad.cart_repair_per_trip = 1.5;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(AvailabilityTest, SteadyStateProducts)
{
    AvailabilityModel m(defaultConfig());
    const auto r = m.report();
    const double lim_one = 43800.0 / 43806.0;
    EXPECT_NEAR(r.lim_availability, lim_one * lim_one, 1e-12);
    EXPECT_NEAR(r.track_availability, 87600.0 / 87612.0, 1e-12);
    // One station: its own availability.
    EXPECT_NEAR(r.stations_availability, 61320.0 / 61322.0, 1e-12);
    EXPECT_NEAR(r.system_availability,
                r.lim_availability * r.track_availability *
                    r.stations_availability,
                1e-12);
    // Five nines territory for these MTBFs: under 9 h downtime/year.
    EXPECT_LT(r.downtime_hours_per_year, 9.0);
    EXPECT_GT(r.system_availability, 0.999);
}

TEST(AvailabilityTest, MoreStationsRaiseServiceAvailability)
{
    DhlConfig one = defaultConfig();
    DhlConfig four = defaultConfig();
    four.docking_stations = 4;
    const auto r1 = AvailabilityModel(one).report();
    const auto r4 = AvailabilityModel(four).report();
    EXPECT_GT(r4.stations_availability, r1.stations_availability);
    EXPECT_GT(r4.system_availability, r1.system_availability);
}

TEST(AvailabilityTest, CartRepairRotationViaLittlesLaw)
{
    ReliabilityConfig rel;
    rel.cart_repair_per_trip = 0.01;
    rel.cart_repair_hours = 2.0;
    DhlConfig cfg = defaultConfig();
    cfg.library_slots = 100;
    AvailabilityModel m(cfg, rel);
    // 50 trips/hour * 1 % * 2 h = 1 cart in repair on average = 1 %.
    const auto r = m.report(50.0);
    EXPECT_NEAR(r.carts_in_repair_fraction, 0.01, 1e-12);
    // Idle fleet: nobody in the shop.
    EXPECT_DOUBLE_EQ(m.report(0.0).carts_in_repair_fraction, 0.0);
}

TEST(AvailabilityTest, DeratedBandwidth)
{
    AvailabilityModel m(defaultConfig());
    const AnalyticalModel ideal(defaultConfig());
    const double derated = m.deratedBandwidth();
    EXPECT_LT(derated, ideal.launch().bandwidth.value());
    EXPECT_GT(derated, 0.999 * ideal.launch().bandwidth.value());
}

TEST(AvailabilityTest, PerfectComponentsGiveFullAvailability)
{
    ReliabilityConfig perfect;
    perfect.lim_mttr = 0.0;
    perfect.track_mttr = 0.0;
    perfect.station_mttr = 0.0;
    AvailabilityModel m(defaultConfig(), perfect);
    const auto r = m.report();
    EXPECT_DOUBLE_EQ(r.system_availability, 1.0);
    EXPECT_DOUBLE_EQ(r.downtime_hours_per_year, 0.0);
}

TEST(AvailabilityTest, RejectsNegativeTripRate)
{
    AvailabilityModel m(defaultConfig());
    EXPECT_THROW(m.report(-1.0), dhl::FatalError);
}

//===========================================================================
// Analytical <-> event-driven bridge (toFaultConfig)
//===========================================================================

TEST(ToFaultConfigTest, MirrorsEveryParameter)
{
    ReliabilityConfig rel;
    rel.lim_mtbf = 111.0;
    rel.lim_mttr = 2.0;
    rel.track_mtbf = 222.0;
    rel.track_mttr = 3.0;
    rel.station_mtbf = 333.0;
    rel.station_mttr = 4.0;
    rel.cart_repair_per_trip = 0.125;
    rel.cart_repair_hours = 0.5;

    const auto fc = toFaultConfig(rel, 99, 1e6);
    EXPECT_TRUE(fc.enabled);
    EXPECT_EQ(fc.seed, 99u);
    EXPECT_DOUBLE_EQ(fc.horizon, 1e6);
    EXPECT_DOUBLE_EQ(fc.lim_mtbf, rel.lim_mtbf);
    EXPECT_DOUBLE_EQ(fc.lim_mttr, rel.lim_mttr);
    EXPECT_DOUBLE_EQ(fc.track_mtbf, rel.track_mtbf);
    EXPECT_DOUBLE_EQ(fc.track_mttr, rel.track_mttr);
    EXPECT_DOUBLE_EQ(fc.station_mtbf, rel.station_mtbf);
    EXPECT_DOUBLE_EQ(fc.station_mttr, rel.station_mttr);
    EXPECT_DOUBLE_EQ(fc.cart_repair_per_trip, rel.cart_repair_per_trip);
    EXPECT_DOUBLE_EQ(fc.cart_repair_hours, rel.cart_repair_hours);
}

TEST(ToFaultConfigTest, ValidatorsAgreeOnEdgeCases)
{
    // Zero MTTRs: legal in both models (perfect instant repairs).
    ReliabilityConfig zero_mttr;
    zero_mttr.lim_mttr = 0.0;
    zero_mttr.track_mttr = 0.0;
    zero_mttr.station_mttr = 0.0;
    EXPECT_NO_THROW(validate(zero_mttr));
    EXPECT_NO_THROW(dhl::faults::validate(toFaultConfig(zero_mttr)));

    // Carts that never break: legal in both models.
    ReliabilityConfig no_breakdowns;
    no_breakdowns.cart_repair_per_trip = 0.0;
    no_breakdowns.cart_repair_hours = 0.0;
    EXPECT_NO_THROW(validate(no_breakdowns));
    EXPECT_NO_THROW(dhl::faults::validate(toFaultConfig(no_breakdowns)));

    // What one validator rejects, the bridge must reject too.
    ReliabilityConfig bad;
    bad.lim_mtbf = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    EXPECT_THROW(toFaultConfig(bad), dhl::FatalError);
}

TEST(ToFaultConfigTest, SingleStationTopologyAgrees)
{
    // docking_stations = 1: the analytical "at least one station" term
    // degenerates to the station's own availability, and the injector
    // registers exactly one station whose outages take service down.
    DhlConfig cfg = defaultConfig();
    ASSERT_EQ(cfg.docking_stations, 1u);

    ReliabilityConfig rel;
    rel.lim_mtbf = 1e12; // only stations ever fail
    rel.track_mtbf = 1e12;
    rel.station_mtbf = 50.0;
    rel.station_mttr = 10.0;

    const auto report = AvailabilityModel(cfg, rel).report();
    EXPECT_NEAR(report.stations_availability, 50.0 / 60.0, 1e-9);

    const double horizon = 30000.0 * 3600.0;
    dhl::sim::Simulator sim;
    dhl::faults::FaultState state(sim);
    dhl::faults::FaultInjector injector(
        sim, state, toFaultConfig(rel, 3, horizon),
        cfg.docking_stations);
    sim.run();
    EXPECT_EQ(state.components(dhl::faults::Component::Station), 1u);
    EXPECT_NEAR(state.observedAvailability(horizon),
                report.system_availability,
                0.05 * report.system_availability);
}
