/**
 * @file
 * Unit tests for the track admission logic under the three sharing
 * modes.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "dhl/track.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;

namespace {

DhlConfig
modeConfig(TrackMode mode)
{
    DhlConfig cfg = defaultConfig();
    cfg.track_mode = mode;
    return cfg;
}

} // namespace

TEST(TrackTest, TravelTimeMatchesConfig)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Track t(sim, cfg);
    EXPECT_NEAR(t.travelTime(), 2.6, 1e-12);
}

TEST(TrackTest, ExclusiveSerialisesEverything)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::Exclusive);
    Track t(sim, cfg);
    const auto g1 = t.reserveLaunch(Direction::Outbound);
    EXPECT_DOUBLE_EQ(g1.depart_time, 0.0);
    EXPECT_NEAR(g1.arrive_time, 2.6, 1e-12);
    // Second launch (either direction) waits for the tube to drain.
    const auto g2 = t.reserveLaunch(Direction::Outbound);
    EXPECT_NEAR(g2.depart_time, 2.6, 1e-12);
    const auto g3 = t.reserveLaunch(Direction::Inbound);
    EXPECT_NEAR(g3.depart_time, 5.2, 1e-12);
    EXPECT_EQ(t.launches(), 3u);
}

TEST(TrackTest, PipelinedConvoysUseHeadway)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::Pipelined);
    cfg.headway = 1.0;
    Track t(sim, cfg);
    const auto g1 = t.reserveLaunch(Direction::Outbound);
    const auto g2 = t.reserveLaunch(Direction::Outbound);
    const auto g3 = t.reserveLaunch(Direction::Outbound);
    EXPECT_DOUBLE_EQ(g1.depart_time, 0.0);
    EXPECT_DOUBLE_EQ(g2.depart_time, 1.0);
    EXPECT_DOUBLE_EQ(g3.depart_time, 2.0);
}

TEST(TrackTest, PipelinedDirectionReversalDrainsTube)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::Pipelined);
    cfg.headway = 1.0;
    Track t(sim, cfg);
    t.reserveLaunch(Direction::Outbound);
    const auto g2 = t.reserveLaunch(Direction::Outbound); // departs 1.0
    const auto rev = t.reserveLaunch(Direction::Inbound);
    // Tube drains when the second cart arrives: 1.0 + 2.6.
    EXPECT_NEAR(rev.depart_time, g2.arrive_time, 1e-12);
}

TEST(TrackTest, DualTrackDirectionsAreIndependent)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::DualTrack);
    cfg.headway = 1.0;
    Track t(sim, cfg);
    const auto out1 = t.reserveLaunch(Direction::Outbound);
    const auto in1 = t.reserveLaunch(Direction::Inbound);
    EXPECT_DOUBLE_EQ(out1.depart_time, 0.0);
    EXPECT_DOUBLE_EQ(in1.depart_time, 0.0); // no interaction
    const auto out2 = t.reserveLaunch(Direction::Outbound);
    EXPECT_DOUBLE_EQ(out2.depart_time, 1.0);
    EXPECT_EQ(t.launches(Direction::Outbound), 2u);
    EXPECT_EQ(t.launches(Direction::Inbound), 1u);
}

TEST(TrackTest, EnergyAccumulatesPerLaunch)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    Track t(sim, cfg);
    const auto g = t.reserveLaunch(Direction::Outbound);
    EXPECT_NEAR(g.energy, 15040.0, 10.0);
    t.reserveLaunch(Direction::Inbound);
    EXPECT_NEAR(t.totalEnergy(), 2.0 * 15040.0, 20.0);
}

TEST(TrackTest, GrantsNeverDepartBeforeNow)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::Pipelined);
    Track t(sim, cfg);
    t.reserveLaunch(Direction::Outbound);
    sim.schedule(100.0, [] {});
    sim.run();
    const auto g = t.reserveLaunch(Direction::Outbound);
    EXPECT_DOUBLE_EQ(g.depart_time, 100.0);
}

TEST(TrackTest, DrainTimeTracksLatestArrival)
{
    Simulator sim;
    DhlConfig cfg = modeConfig(TrackMode::Pipelined);
    cfg.headway = 0.5;
    Track t(sim, cfg);
    t.reserveLaunch(Direction::Outbound);
    const auto g2 = t.reserveLaunch(Direction::Outbound);
    EXPECT_NEAR(t.drainTime(), g2.arrive_time, 1e-12);
}
