/**
 * @file
 * Unit tests for the unit-conversion and formatting helpers.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/units.hpp"

namespace u = dhl::units;

TEST(Units, DecimalDataSizes)
{
    EXPECT_DOUBLE_EQ(u::kilobytes(1), 1e3);
    EXPECT_DOUBLE_EQ(u::megabytes(1), 1e6);
    EXPECT_DOUBLE_EQ(u::gigabytes(1), 1e9);
    EXPECT_DOUBLE_EQ(u::terabytes(1), 1e12);
    EXPECT_DOUBLE_EQ(u::petabytes(29), 29e15);
}

TEST(Units, BinaryDataSizes)
{
    EXPECT_DOUBLE_EQ(u::kibibytes(1), 1024.0);
    EXPECT_DOUBLE_EQ(u::mebibytes(1), 1048576.0);
    EXPECT_DOUBLE_EQ(u::gibibytes(1), 1073741824.0);
    EXPECT_DOUBLE_EQ(u::tebibytes(1), 1099511627776.0);
    EXPECT_DOUBLE_EQ(u::pebibytes(1), 1125899906842624.0);
}

TEST(Units, BitsAndRates)
{
    EXPECT_DOUBLE_EQ(u::bitsToBytes(8), 1.0);
    EXPECT_DOUBLE_EQ(u::bytesToBits(1), 8.0);
    EXPECT_DOUBLE_EQ(u::gigabitsPerSecond(400), 50e9);
    EXPECT_DOUBLE_EQ(u::terabitsPerSecond(3.8), 475e9);
    EXPECT_DOUBLE_EQ(u::toGigabitsPerSecond(50e9), 400.0);
}

TEST(Units, PaperTransferTime29Pb)
{
    // The paper's §II-C anchor: 29 PB at 400 Gbit/s = 580,000 s = 6.71
    // days.
    const double t = u::petabytes(29) / u::gigabitsPerSecond(400);
    EXPECT_DOUBLE_EQ(t, 580000.0);
    EXPECT_NEAR(u::toDays(t), 6.71, 0.005);
}

TEST(Units, Time)
{
    EXPECT_DOUBLE_EQ(u::minutes(2), 120.0);
    EXPECT_DOUBLE_EQ(u::hours(1), 3600.0);
    EXPECT_DOUBLE_EQ(u::days(1), 86400.0);
    EXPECT_DOUBLE_EQ(u::toHours(7200), 2.0);
    EXPECT_DOUBLE_EQ(u::toMinutes(90), 1.5);
    EXPECT_DOUBLE_EQ(u::milliseconds(250), 0.25);
}

TEST(Units, MassEnergyPower)
{
    EXPECT_DOUBLE_EQ(u::grams(282), 0.282);
    EXPECT_DOUBLE_EQ(u::toGrams(0.282), 282.0);
    EXPECT_DOUBLE_EQ(u::kilojoules(15), 15000.0);
    EXPECT_DOUBLE_EQ(u::megajoules(13.92), 13.92e6);
    EXPECT_DOUBLE_EQ(u::toKilojoules(3700), 3.7);
    EXPECT_DOUBLE_EQ(u::toMegajoules(299.45e6), 299.45);
    EXPECT_DOUBLE_EQ(u::kilowatts(1.75), 1750.0);
    EXPECT_DOUBLE_EQ(u::toKilowatts(75000), 75.0);
}

TEST(Units, GbPerJoule)
{
    // The paper's headline: a 512 TB cart at 100 m/s moves 73.3 GB/J.
    EXPECT_NEAR(u::gbPerJoule(512e12, 6986.7), 73.3, 0.05);
}

TEST(Units, Pressure)
{
    EXPECT_DOUBLE_EQ(u::millibar(1), 100.0);
    EXPECT_GT(u::kAtmospherePa, u::millibar(1000));
}

TEST(UnitsFormat, FormatSig)
{
    EXPECT_EQ(u::formatSig(0.0), "0");
    EXPECT_EQ(u::formatSig(8.6, 3), "8.6");
    EXPECT_EQ(u::formatSig(295.1, 4), "295.1");
    EXPECT_EQ(u::formatSig(-1.5, 3), "-1.5");
    EXPECT_EQ(u::formatSig(17.0, 3), "17");
}

TEST(UnitsFormat, FormatBytes)
{
    EXPECT_EQ(u::formatBytes(29e15), "29 PB");
    EXPECT_EQ(u::formatBytes(256e12), "256 TB");
    EXPECT_EQ(u::formatBytes(1.5e9), "1.5 GB");
    EXPECT_EQ(u::formatBytes(512.0), "512 B");
}

TEST(UnitsFormat, FormatDuration)
{
    EXPECT_EQ(u::formatDuration(580000.0), "6.71 days");
    EXPECT_EQ(u::formatDuration(8.6), "8.6 s");
    EXPECT_EQ(u::formatDuration(0.25), "250 ms");
    EXPECT_EQ(u::formatDuration(90.0), "1.5 min");
}

TEST(UnitsFormat, FormatEnergyPowerBandwidth)
{
    EXPECT_EQ(u::formatEnergy(13.92e6), "13.92 MJ");
    EXPECT_EQ(u::formatEnergy(15040.0), "15.04 kJ");
    EXPECT_EQ(u::formatPower(1750.0), "1.75 kW");
    EXPECT_EQ(u::formatBandwidth(30e12), "30 TB/s");
}

TEST(UnitsFormat, NonFinite)
{
    EXPECT_EQ(u::formatSig(std::numeric_limits<double>::quiet_NaN()), "nan");
    EXPECT_EQ(u::formatSig(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(u::formatSig(-std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(UnitsFormat, NonFiniteScaledStaysBare)
{
    // A non-finite magnitude must never be scaled into a unit ("inf PB"
    // would imply a finite order of magnitude that does not exist).
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(u::formatBytes(nan), "nan");
    EXPECT_EQ(u::formatBytes(inf), "inf");
    EXPECT_EQ(u::formatBytes(-inf), "-inf");
    EXPECT_EQ(u::formatDuration(nan), "nan");
    EXPECT_EQ(u::formatDuration(inf), "inf");
    EXPECT_EQ(u::formatEnergy(inf), "inf");
    EXPECT_EQ(u::formatPower(-inf), "-inf");
    EXPECT_EQ(u::formatBandwidth(nan), "nan");
}

TEST(UnitsFormat, ZeroCarriesBaseUnit)
{
    EXPECT_EQ(u::formatBytes(0.0), "0 B");
    EXPECT_EQ(u::formatDuration(0.0), "0 s");
    EXPECT_EQ(u::formatEnergy(0.0), "0 J");
    EXPECT_EQ(u::formatPower(0.0), "0 W");
    EXPECT_EQ(u::formatBandwidth(0.0), "0 B/s");
}

TEST(UnitsFormat, NegativeValuesScaleByMagnitude)
{
    // The sign must not defeat unit selection (fabs drives the
    // threshold comparison, the sign rides along in the mantissa).
    EXPECT_EQ(u::formatBytes(-256e12), "-256 TB");
    EXPECT_EQ(u::formatDuration(-90.0), "-1.5 min");
    EXPECT_EQ(u::formatEnergy(-15040.0), "-15.04 kJ");
    EXPECT_EQ(u::formatPower(-1750.0), "-1.75 kW");
}

TEST(UnitsFormat, SubMillisecondDurations)
{
    EXPECT_EQ(u::formatDuration(1.5e-3), "1.5 ms");
    EXPECT_EQ(u::formatDuration(500e-6), "500 us");
    EXPECT_EQ(u::formatDuration(250e-9), "250 ns");
    // Below the smallest step the base unit takes over.
    EXPECT_EQ(u::formatDuration(5e-10), "5e-10 s");
}
