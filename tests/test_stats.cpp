/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"

using namespace dhl::stats;

TEST(Scalar, SetAddAndOperators)
{
    Scalar s("s", "a scalar");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s.set(3.5);
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.add(1.5);
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s = 2.0;
    s += 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Counter, IncrementAndReset)
{
    Counter c("c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c.increment();
    c.increment(5);
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, WelfordMatchesClosedForm)
{
    Accumulator a("a", "samples");
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    // Population variance of this classic set is 4; sample variance
    // = 32/7.
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, EmptyAndSingle)
{
    Accumulator a("a", "samples");
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    a.sample(42.0);
    EXPECT_DOUBLE_EQ(a.mean(), 42.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(HistogramTest, BinningAndFlows)
{
    Histogram h("h", "samples", 0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bin 0
    h.sample(1.99); // bin 0
    h.sample(2.0);  // bin 1
    h.sample(9.99); // bin 4
    h.sample(10.0); // overflow
    h.sample(25.0); // overflow
    EXPECT_EQ(h.totalSamples(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
}

TEST(HistogramTest, RejectsBadRanges)
{
    EXPECT_THROW(Histogram("h", "d", 0.0, 10.0, 0), dhl::FatalError);
    EXPECT_THROW(Histogram("h", "d", 5.0, 5.0, 3), dhl::FatalError);
    EXPECT_THROW(Histogram("h", "d", 7.0, 5.0, 3), dhl::FatalError);
}

TEST(FormulaTest, LazyEvaluation)
{
    double num = 10.0;
    double den = 4.0;
    Formula f("ratio", "num/den", [&] { return num / den; });
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    num = 20.0;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(StatGroupTest, HierarchyAndDump)
{
    StatGroup root("system");
    auto &s = root.addScalar("energy", "total energy");
    auto &c = root.addCounter("events", "event count");
    auto &child = root.addGroup("track");
    auto &cs = child.addScalar("launches", "launches");
    s.set(15.0);
    c.increment(3);
    cs.set(2.0);

    EXPECT_EQ(root.numStats(), 2u);
    EXPECT_EQ(root.numGroups(), 1u);
    EXPECT_NE(root.find("energy"), nullptr);
    EXPECT_EQ(root.find("missing"), nullptr);

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("system.energy"), std::string::npos);
    EXPECT_NE(out.find("system.events"), std::string::npos);
    EXPECT_NE(out.find("system.track.launches"), std::string::npos);
    EXPECT_NE(out.find("# total energy"), std::string::npos);
}

TEST(StatGroupTest, ResetAllRecurses)
{
    StatGroup root("r");
    auto &s = root.addScalar("s", "d");
    auto &g = root.addGroup("g");
    auto &c = g.addCounter("c", "d");
    s.set(1.0);
    c.increment();
    root.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(c.value(), 0u);
}

TEST(PercentileTest, InterpolatesBetweenClosestRanks)
{
    // p maps to rank p/100 * (n-1) with linear interpolation.
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0}; // unsorted
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(PercentileTest, RejectsEmptyAndOutOfRange)
{
    EXPECT_THROW(percentile({}, 50.0), dhl::FatalError);
    EXPECT_THROW(percentile({1.0}, -1.0), dhl::FatalError);
    EXPECT_THROW(percentile({1.0}, 100.5), dhl::FatalError);
}

TEST(PercentileTest, SingleSampleAnswersEveryQuantile)
{
    // n = 1: rank p/100 * (n-1) is 0 for every p, so the lone sample
    // is every quantile (contract pinned in stats.hpp; the
    // QuantileSketch exact path must agree).
    for (double p : {0.0, 0.1, 25.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile({7.0}, p), 7.0);
}

TEST(PercentileTest, DuplicateValuesFormPlateaus)
{
    // A run of equal values is a plateau: any p whose fractional rank
    // lands inside the run returns that value exactly, with no
    // blending against neighbouring distinct values.
    const std::vector<double> v = {1.0, 2.0, 2.0, 2.0, 3.0}; // n = 5
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);  // rank 1
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);  // rank 2
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 2.0);  // rank 3
    EXPECT_DOUBLE_EQ(percentile(v, 60.0), 2.0);  // rank 2.4, inside run
    // Interpolation only engages at the plateau edges.
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);  // rank 0.5
    EXPECT_DOUBLE_EQ(percentile(v, 87.5), 2.5);  // rank 3.5
    // An all-equal sample is one big plateau.
    EXPECT_DOUBLE_EQ(percentile({4.0, 4.0, 4.0}, 33.3), 4.0);
}

TEST(QuantileSketchTest, ExactWhileSmallThenSwitchesToBins)
{
    QuantileSketch sk(0.0, 10.0, 100, /*exact_capacity=*/8);
    const std::vector<double> vals = {4.0, 1.0, 3.0, 2.0};
    for (double v : vals)
        sk.sample(v);
    ASSERT_TRUE(sk.exact());
    // The exact path delegates to stats::percentile: same rank
    // convention, bit for bit.
    for (double p : {0.0, 25.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(sk.quantile(p), percentile(vals, p));

    for (int i = 0; i < 8; ++i)
        sk.sample(5.0);
    EXPECT_FALSE(sk.exact());
    EXPECT_EQ(sk.count(), 12u);
    // Extremes stay exact even after the handoff.
    EXPECT_DOUBLE_EQ(sk.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(sk.quantile(100.0), 5.0);
}

TEST(QuantileSketchTest, SingleSampleMatchesPercentileContract)
{
    QuantileSketch sk(0.0, 10.0);
    sk.sample(7.0);
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(sk.quantile(p), 7.0);
}

TEST(QuantileSketchTest, BinnedEstimateWithinOneBinWidthOfExact)
{
    // Property test: 10k lognormal samples through a 2048-bin sketch
    // must track the exact percentiles within one bin width.
    const std::size_t bins = 2048;
    const double lo = 0.0, hi = 16.0;
    const double width = (hi - lo) / static_cast<double>(bins);

    QuantileSketch sk(lo, hi, bins);
    std::vector<double> all;
    dhl::Rng rng(2024);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.lognormal(0.0, 0.5);
        sk.sample(v);
        all.push_back(v);
    }
    ASSERT_FALSE(sk.exact());
    for (double p : {1.0, 5.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        const double exact_q = percentile(all, p);
        ASSERT_LT(exact_q, hi); // bound only holds inside the range
        EXPECT_NEAR(sk.quantile(p), exact_q, width)
            << "p = " << p;
    }
    EXPECT_DOUBLE_EQ(sk.quantile(0.0), sk.min());
    EXPECT_DOUBLE_EQ(sk.quantile(100.0), sk.max());
}

TEST(QuantileSketchTest, OutOfRangeSamplesClampIntoEndBins)
{
    QuantileSketch sk(0.0, 10.0, 10, /*exact_capacity=*/2);
    sk.sample(-5.0);
    sk.sample(0.5);
    sk.sample(9.5);
    sk.sample(25.0);
    EXPECT_FALSE(sk.exact());
    // Extremes are tracked exactly even though the samples were
    // clamped into the end bins...
    EXPECT_DOUBLE_EQ(sk.min(), -5.0);
    EXPECT_DOUBLE_EQ(sk.max(), 25.0);
    EXPECT_DOUBLE_EQ(sk.quantile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(sk.quantile(100.0), 25.0);
    // ...and every interior estimate is clamped into [min, max].
    for (double p : {10.0, 50.0, 90.0}) {
        const double q = sk.quantile(p);
        EXPECT_GE(q, sk.min());
        EXPECT_LE(q, sk.max());
    }
}

TEST(QuantileSketchTest, InsertionOrderDoesNotMatter)
{
    // The sketch state is a function of the sample multiset only —
    // the property that makes parallel planner runs byte-identical.
    QuantileSketch fwd(0.0, 8.0, 64, 4);
    QuantileSketch rev(0.0, 8.0, 64, 4);
    std::vector<double> vals;
    dhl::Rng rng(7);
    for (int i = 0; i < 100; ++i)
        vals.push_back(rng.uniform(0.0, 8.0));
    for (double v : vals)
        fwd.sample(v);
    for (auto it = vals.rbegin(); it != vals.rend(); ++it)
        rev.sample(*it);
    for (double p : {0.0, 12.5, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(fwd.quantile(p), rev.quantile(p));
}

TEST(QuantileSketchTest, RejectsBadInput)
{
    EXPECT_THROW(QuantileSketch(5.0, 5.0), dhl::FatalError);
    EXPECT_THROW(QuantileSketch(9.0, 5.0), dhl::FatalError);
    EXPECT_THROW(QuantileSketch(0.0, 1.0, 0), dhl::FatalError);
    QuantileSketch sk(0.0, 1.0);
    EXPECT_THROW(sk.quantile(50.0), dhl::FatalError); // empty
    EXPECT_THROW(sk.min(), dhl::FatalError);
    sk.sample(0.5);
    EXPECT_THROW(sk.quantile(-1.0), dhl::FatalError);
    EXPECT_THROW(sk.quantile(101.0), dhl::FatalError);
    EXPECT_THROW(sk.sample(std::nan("")), dhl::FatalError);
}

TEST(StatGroupTest, AccumulatorAndHistogramRegistration)
{
    StatGroup root("r");
    auto &a = root.addAccumulator("acc", "d");
    auto &h = root.addHistogram("hist", "d", 0.0, 1.0, 4);
    auto &f = root.addFormula("f", "d", [] { return 7.0; });
    a.sample(1.0);
    h.sample(0.5);
    EXPECT_DOUBLE_EQ(f.value(), 7.0);
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("acc.mean"), std::string::npos);
    EXPECT_NE(os.str().find("hist.samples"), std::string::npos);
}

TEST(JainFairnessTest, KnownValues)
{
    // Equal shares are perfectly fair.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
    // One user hogging everything: index = 1/n.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({9.0, 0.0, 0.0}), 1.0 / 3.0);
    // Hand-computed: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({1.0, 2.0, 3.0}), 36.0 / 42.0);
    // Single user is trivially fair.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({42.0}), 1.0);
    // All-zero allocations: fair by convention.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({0.0, 0.0}), 1.0);
}

TEST(JainFairnessTest, WeightedNormalises)
{
    // Shares proportional to weight are perfectly fair.
    EXPECT_DOUBLE_EQ(
        jainFairnessIndex({3.0, 1.0}, {3.0, 1.0}), 1.0);
    // Weighted degenerates to plain under equal weights.
    EXPECT_DOUBLE_EQ(jainFairnessIndex({1.0, 2.0, 3.0}, {1.0, 1.0, 1.0}),
                     jainFairnessIndex({1.0, 2.0, 3.0}));
    // Hand-computed: normalised shares {1, 4} -> 25/(2*17).
    EXPECT_DOUBLE_EQ(jainFairnessIndex({2.0, 4.0}, {2.0, 1.0}),
                     25.0 / 34.0);
}

TEST(JainFairnessTest, RejectsBadInput)
{
    EXPECT_THROW(jainFairnessIndex({}), dhl::FatalError);
    EXPECT_THROW(jainFairnessIndex({-1.0, 1.0}), dhl::FatalError);
    EXPECT_THROW(jainFairnessIndex({1.0, 1.0}, {1.0}), dhl::FatalError);
    EXPECT_THROW(jainFairnessIndex({1.0, 1.0}, {1.0, 0.0}),
                 dhl::FatalError);
    EXPECT_THROW(jainFairnessIndex({1.0}, {-2.0}), dhl::FatalError);
}
