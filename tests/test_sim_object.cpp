/**
 * @file
 * Unit tests for SimObject and PeriodicProcess.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hpp"
#include "sim/sim_object.hpp"

using dhl::sim::PeriodicProcess;
using dhl::sim::SimObject;
using dhl::sim::Simulator;

namespace {

class Dummy : public SimObject
{
  public:
    Dummy(Simulator &sim) : SimObject(sim, "dummy") {}

    void
    fireIn(double delay, int *counter)
    {
        schedule(delay, [counter] { ++*counter; });
    }
};

} // namespace

TEST(SimObjectTest, NameAndStats)
{
    Simulator sim;
    Dummy d(sim);
    EXPECT_EQ(d.name(), "dummy");
    EXPECT_EQ(&d.simulator(), &sim);
    EXPECT_EQ(d.statsGroup().name(), "dummy");
    EXPECT_DOUBLE_EQ(d.now(), 0.0);
}

TEST(SimObjectTest, ScheduleForwardsToSimulator)
{
    Simulator sim;
    Dummy d(sim);
    int counter = 0;
    d.fireIn(2.0, &counter);
    sim.run();
    EXPECT_EQ(counter, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(PeriodicProcessTest, TicksAtPeriod)
{
    Simulator sim;
    int ticks = 0;
    PeriodicProcess p(sim, 1.0, [&] { ++ticks; });
    p.start();
    sim.runUntil(5.5);
    EXPECT_EQ(ticks, 5); // at t = 1, 2, 3, 4, 5
    p.stop();
}

TEST(PeriodicProcessTest, CustomInitialDelay)
{
    Simulator sim;
    std::vector<double> times;
    PeriodicProcess p(sim, 2.0, [&] { times.push_back(sim.now()); });
    p.start(0.5);
    sim.runUntil(5.0);
    ASSERT_GE(times.size(), 3u);
    EXPECT_DOUBLE_EQ(times[0], 0.5);
    EXPECT_DOUBLE_EQ(times[1], 2.5);
    EXPECT_DOUBLE_EQ(times[2], 4.5);
    p.stop();
}

TEST(PeriodicProcessTest, StopFromInsideTick)
{
    Simulator sim;
    int ticks = 0;
    PeriodicProcess p(sim, 1.0, [&] {
        ++ticks;
        if (ticks == 3)
            p.stop();
    });
    p.start();
    sim.run();
    EXPECT_EQ(ticks, 3);
    EXPECT_FALSE(p.running());
}

TEST(PeriodicProcessTest, StopAndRestart)
{
    Simulator sim;
    int ticks = 0;
    PeriodicProcess p(sim, 1.0, [&] { ++ticks; });
    p.start();
    sim.runUntil(2.5);
    EXPECT_EQ(ticks, 2);
    p.stop();
    sim.runUntil(10.0);
    EXPECT_EQ(ticks, 2);
    p.start();
    sim.runUntil(12.5);
    EXPECT_EQ(ticks, 4);
    p.stop();
}

TEST(PeriodicProcessTest, SetPeriodTakesEffectNextTick)
{
    Simulator sim;
    std::vector<double> times;
    PeriodicProcess p(sim, 1.0, [&] {
        times.push_back(sim.now());
        p.setPeriod(3.0);
    });
    p.start();
    sim.runUntil(8.0);
    ASSERT_GE(times.size(), 3u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 4.0);
    EXPECT_DOUBLE_EQ(times[2], 7.0);
    p.stop();
}

TEST(PeriodicProcessTest, RejectsBadParameters)
{
    Simulator sim;
    EXPECT_THROW(PeriodicProcess(sim, 0.0, [] {}), dhl::FatalError);
    EXPECT_THROW(PeriodicProcess(sim, -1.0, [] {}), dhl::FatalError);
    EXPECT_THROW(PeriodicProcess(sim, 1.0, nullptr), dhl::FatalError);
    PeriodicProcess p(sim, 1.0, [] {});
    EXPECT_THROW(p.start(-1.0), dhl::FatalError);
    EXPECT_THROW(p.setPeriod(0.0), dhl::FatalError);
}

TEST(PeriodicProcessTest, DestructorCancelsCleanly)
{
    Simulator sim;
    int ticks = 0;
    {
        PeriodicProcess p(sim, 1.0, [&] { ++ticks; });
        p.start();
        sim.runUntil(1.5);
    }
    sim.run(); // the cancelled tick must not fire
    EXPECT_EQ(ticks, 1);
}
