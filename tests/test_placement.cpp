/**
 * @file
 * Unit tests for the LRU cart cache / dataset placement layer.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/placement.hpp"
#include "workloads/generator.hpp"

using namespace dhl::core;
namespace u = dhl::units;

namespace {

CartCache
smallCache(std::size_t carts = 4)
{
    PlacementConfig cfg;
    cfg.cache_carts = carts;
    cfg.backing_read_bw = 50e9;
    return CartCache(defaultConfig(), cfg);
}

} // namespace

TEST(CartCacheTest, FirstAccessMissesThenHits)
{
    auto cache = smallCache();
    const auto miss = cache.access("ds", u::terabytes(512)); // 2 carts
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.carts, 2u);
    EXPECT_GT(miss.load_time, 0.0);
    EXPECT_GT(miss.stage_time, 0.0);
    EXPECT_DOUBLE_EQ(miss.total_time, miss.load_time + miss.stage_time);

    const auto hit = cache.access("ds", u::terabytes(512));
    EXPECT_TRUE(hit.hit);
    EXPECT_DOUBLE_EQ(hit.load_time, 0.0);
    EXPECT_NEAR(hit.stage_time, miss.stage_time, 1e-9);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
    EXPECT_EQ(cache.occupiedCarts(), 2u);
}

TEST(CartCacheTest, LoadTimeBoundByBackingPool)
{
    auto cache = smallCache();
    // 512 TB from a 50 GB/s pool (the cart write side is faster at
    // 2 x 192 GB/s): 10,240 s.
    const auto miss = cache.access("ds", u::terabytes(512));
    EXPECT_NEAR(miss.load_time, 512e12 / 50e9, 1e-6);
}

TEST(CartCacheTest, LoadTimeBoundByCartWrites)
{
    PlacementConfig cfg;
    cfg.cache_carts = 4;
    cfg.backing_read_bw = 1e15; // effectively infinite pool
    CartCache cache(defaultConfig(), cfg);
    const auto miss = cache.access("ds", u::terabytes(256)); // 1 cart
    // Bound by the cart's aggregate write bandwidth (32 x 6 GB/s).
    EXPECT_NEAR(miss.load_time, 256e12 / (32 * 6e9), 1e-6);
}

TEST(CartCacheTest, LruEviction)
{
    auto cache = smallCache(4);
    cache.access("a", u::terabytes(512)); // 2 carts
    cache.access("b", u::terabytes(512)); // 2 carts -> full
    EXPECT_TRUE(cache.resident("a"));
    EXPECT_TRUE(cache.resident("b"));

    // "c" needs 2 carts: evicts the LRU ("a").
    const auto c = cache.access("c", u::terabytes(512));
    EXPECT_EQ(c.evicted, 1u);
    EXPECT_FALSE(cache.resident("a"));
    EXPECT_TRUE(cache.resident("b"));
    EXPECT_TRUE(cache.resident("c"));

    // Touch "b" to refresh it, then insert "d": "c" is now LRU.
    cache.access("b", u::terabytes(512));
    cache.access("d", u::terabytes(512));
    EXPECT_TRUE(cache.resident("b"));
    EXPECT_FALSE(cache.resident("c"));
}

TEST(CartCacheTest, OversizeDatasetRejected)
{
    auto cache = smallCache(2);
    EXPECT_THROW(cache.access("huge", u::petabytes(1)), dhl::FatalError);
    EXPECT_THROW(cache.access("", 1e12), dhl::FatalError);
    EXPECT_THROW(cache.access("zero", 0.0), dhl::FatalError);
}

TEST(CartCacheTest, ZipfTrafficGetsHighHitRate)
{
    // The paper's reuse argument: under Zipf-popular dataset staging a
    // modest cart cache serves most accesses without touching the
    // backing pool.
    PlacementConfig cfg;
    cfg.cache_carts = 8; // holds the top ~4 datasets of 2 carts each
    CartCache cache(defaultConfig(), cfg);

    dhl::Rng rng(42);
    dhl::ZipfTable zipf(16, 1.2); // 16 datasets, heavy skew
    for (int i = 0; i < 2000; ++i) {
        const auto rank = zipf.sample(rng);
        cache.access("ds" + std::to_string(rank), u::terabytes(500));
    }
    EXPECT_GT(cache.hitRate(), 0.5);
    EXPECT_LE(cache.occupiedCarts(), 8u);
    EXPECT_GT(cache.totalLoadTime(), 0.0);
}

TEST(CartCacheTest, ResizeOnHitRefits)
{
    auto cache = smallCache(4);
    cache.access("ds", u::terabytes(256)); // 1 cart
    EXPECT_EQ(cache.occupiedCarts(), 1u);
    const auto grown = cache.access("ds", u::terabytes(700)); // 3 carts
    EXPECT_TRUE(grown.hit);
    EXPECT_EQ(cache.occupiedCarts(), 3u);
}
