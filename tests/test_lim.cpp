/**
 * @file
 * Unit tests for the LIM energy/power model, pinned to the paper's
 * Table VI energy and peak-power columns.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "physics/lim.hpp"

using namespace dhl::physics;
using namespace dhl::qty::literals;
namespace u = dhl::units;
namespace qty = dhl::qty;

namespace {

LimConfig
paperLim()
{
    return LimConfig{}; // 75 % efficiency, 1000 m/s^2, active braking
}

} // namespace

TEST(LaunchEnergy, DefaultCartAt200)
{
    // 0.5 * 0.282 * 200^2 / 0.75 = 7520 J per end.
    EXPECT_NEAR(launchEnergy(0.282_kg, 200.0_mps, paperLim()).value(),
                7520.0, 1e-9);
}

TEST(ShotEnergy, TableViEnergyColumn)
{
    const LimConfig lim = paperLim();
    // (mass g, speed, expected kJ) from Table VI.
    struct Row { double mass; double v; double kj; };
    const Row rows[] = {
        {282, 100, 3.7}, {282, 200, 15}, {282, 300, 34},
        {161, 200, 8.6}, {524, 200, 28},
        {161, 100, 2.1}, {524, 100, 7.0},
        {161, 300, 19},  {524, 300, 63},
    };
    for (const auto &r : rows) {
        const qty::Joules e = shotEnergy(
            qty::grams(r.mass), qty::MetresPerSecond{r.v}, lim);
        EXPECT_NEAR(u::toKilojoules(e), r.kj, r.kj * 0.03)
            << "mass " << r.mass << " g, v " << r.v;
    }
}

TEST(PeakPower, TableViPeakPowerColumn)
{
    const LimConfig lim = paperLim();
    struct Row { double mass; double v; double kw; };
    const Row rows[] = {
        {282, 100, 38}, {282, 200, 75}, {282, 300, 113},
        {161, 200, 43}, {524, 200, 140},
        {161, 100, 22}, {524, 100, 70},
        {161, 300, 64}, {524, 300, 210},
    };
    for (const auto &r : rows) {
        const qty::Watts p = peakPower(
            qty::grams(r.mass), qty::MetresPerSecond{r.v}, lim);
        EXPECT_NEAR(u::toKilowatts(p), r.kw, r.kw * 0.03)
            << "mass " << r.mass << " g, v " << r.v;
    }
}

TEST(AveragePower, HalfOfPeak)
{
    const LimConfig lim = paperLim();
    EXPECT_DOUBLE_EQ(averageAccelPower(0.282_kg, 200.0_mps, lim).value(),
                     0.5 * peakPower(0.282_kg, 200.0_mps, lim).value());
}

TEST(BrakeEnergy, ActiveEqualsLaunch)
{
    const LimConfig lim = paperLim();
    EXPECT_DOUBLE_EQ(brakeEnergy(0.282_kg, 200.0_mps, lim).value(),
                     launchEnergy(0.282_kg, 200.0_mps, lim).value());
}

TEST(BrakeEnergy, RegenerativeRecoversKinetic)
{
    LimConfig lim = paperLim();
    lim.braking = BrakingMode::Regenerative;
    lim.regen_fraction = 0.5;
    const double kinetic = 0.5 * 0.282 * 200 * 200;
    const double active = kinetic / lim.efficiency;
    EXPECT_NEAR(brakeEnergy(0.282_kg, 200.0_mps, lim).value(),
                active - 0.5 * kinetic, 1e-9);
    // Full recovery cannot push the cost below zero.
    lim.regen_fraction = 1.0;
    EXPECT_GE(brakeEnergy(0.282_kg, 200.0_mps, lim).value(), 0.0);
}

TEST(BrakeEnergy, EddyCurrentIsFree)
{
    LimConfig lim = paperLim();
    lim.braking = BrakingMode::EddyCurrent;
    EXPECT_DOUBLE_EQ(brakeEnergy(0.282_kg, 200.0_mps, lim).value(), 0.0);
    // Eddy braking halves the shot energy (Discussion §VI).
    EXPECT_DOUBLE_EQ(shotEnergy(0.282_kg, 200.0_mps, lim).value(),
                     launchEnergy(0.282_kg, 200.0_mps, lim).value());
}

TEST(LimConfigValidation, RejectsNonsense)
{
    LimConfig bad = paperLim();
    bad.efficiency = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = paperLim();
    bad.efficiency = 1.5;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = paperLim();
    bad.accel = -10.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = paperLim();
    bad.regen_fraction = 1.5;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = paperLim();
    bad.braking = BrakingMode::Regenerative;
    bad.regen_fraction = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(LimEnergy, RejectsNegativeInputs)
{
    EXPECT_THROW(launchEnergy(qty::Kilograms{-1.0}, 200.0_mps, paperLim()),
                 dhl::FatalError);
    EXPECT_THROW(
        launchEnergy(0.282_kg, qty::MetresPerSecond{-200.0}, paperLim()),
        dhl::FatalError);
    EXPECT_THROW(peakPower(qty::Kilograms{-1.0}, 200.0_mps, paperLim()),
                 dhl::FatalError);
}
