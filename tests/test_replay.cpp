/**
 * @file
 * Unit tests for the workload replay helpers.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "workloads/replay.hpp"

using namespace dhl;
using namespace dhl::workloads;
namespace u = dhl::units;

namespace {

std::vector<TransferRequest>
threeBackups()
{
    return {
        {0.0, u::terabytes(512), "backup"},   // 2 carts
        {100.0, u::terabytes(256), "backup"}, // 1 cart
        {200.0, u::terabytes(256), "backup"}, // 1 cart
    };
}

} // namespace

TEST(ReplayDhlAnalytical, SerialServiceAccounting)
{
    const auto s =
        replayDhlAnalytical(threeBackups(), core::defaultConfig());
    EXPECT_EQ(s.requests, 3u);
    EXPECT_DOUBLE_EQ(s.bytes, u::terabytes(1024));
    // 2+1+1 carts, doubled trips, 8.6 s each.
    EXPECT_NEAR(s.busy_time, 8.0 * 8.6, 1e-9);
    // Widely spaced arrivals: no queueing, latency = own service time.
    EXPECT_NEAR(s.max_latency, 4 * 8.6, 1e-9);
    EXPECT_NEAR(s.energy, 8.0 * 15040.0, 50.0);
    EXPECT_NEAR(s.makespan, 200.0 + 2 * 8.6, 1e-9);
}

TEST(ReplayDhlAnalytical, QueueingShowsUpInLatency)
{
    // All three arrive together: the later ones wait.
    std::vector<TransferRequest> burst = {
        {0.0, u::terabytes(256), "a"},
        {0.0, u::terabytes(256), "b"},
        {0.0, u::terabytes(256), "c"},
    };
    const auto s = replayDhlAnalytical(burst, core::defaultConfig());
    EXPECT_NEAR(s.max_latency, 3.0 * 2 * 8.6, 1e-9);
    EXPECT_NEAR(s.mean_latency, 2.0 * 2 * 8.6, 1e-9); // (1+2+3)/3 shots
}

TEST(ReplayNetworkAnalytical, MatchesTransferModel)
{
    const auto s = replayNetworkAnalytical(
        threeBackups(), network::findRoute("B"));
    const network::TransferModel model(network::findRoute("B"));
    double expect_busy = 0.0, expect_energy = 0.0;
    for (const auto &r : threeBackups()) {
        expect_busy += model.transfer(dhl::qty::Bytes{r.bytes}).time.value();
        expect_energy +=
            model.transfer(dhl::qty::Bytes{r.bytes}).energy.value();
    }
    EXPECT_NEAR(s.busy_time, expect_busy, 1e-6);
    EXPECT_NEAR(s.energy, expect_energy, 1e-3);
}

TEST(ReplayNetworkAnalytical, MoreLinksCutLatency)
{
    const auto one =
        replayNetworkAnalytical(threeBackups(), network::findRoute("A0"),
                                1.0);
    const auto four =
        replayNetworkAnalytical(threeBackups(), network::findRoute("A0"),
                                4.0);
    EXPECT_NEAR(four.busy_time, one.busy_time / 4.0, 1e-6);
    EXPECT_LT(four.mean_latency, one.mean_latency);
    EXPECT_NEAR(four.energy, one.energy, 1e-3); // invariant
}

TEST(ReplayDhlSimulated, AgreesWithAnalyticalOnSingleCartRequests)
{
    // Spaced single-cart requests on an exclusive track: the DES must
    // match the closed-form serial accounting exactly (with multi-cart
    // requests the DES legitimately overlaps one cart's return with
    // the next cart's library undock and comes out slightly ahead).
    std::vector<TransferRequest> requests = {
        {0.0, u::terabytes(200), "a"},
        {100.0, u::terabytes(200), "b"},
        {200.0, u::terabytes(200), "c"},
    };
    const core::DhlConfig cfg = core::defaultConfig();
    const auto des = replayDhlSimulated(requests, cfg);
    const auto closed = replayDhlAnalytical(requests, cfg);
    EXPECT_EQ(des.requests, closed.requests);
    EXPECT_NEAR(des.energy, closed.energy, closed.energy * 1e-9);
    EXPECT_NEAR(des.makespan, closed.makespan, 1e-6);
    EXPECT_NEAR(des.mean_latency, closed.mean_latency, 1e-6);
}

TEST(ReplayDhlSimulated, NeverSlowerThanTheClosedForm)
{
    // Multi-cart requests: the DES's natural overlap can only help.
    const auto requests = threeBackups();
    const core::DhlConfig cfg = core::defaultConfig();
    const auto des = replayDhlSimulated(requests, cfg);
    const auto closed = replayDhlAnalytical(requests, cfg);
    EXPECT_LE(des.makespan, closed.makespan + 1e-6);
    EXPECT_NEAR(des.energy, closed.energy, closed.energy * 1e-9);
}

TEST(ReplayDhlSimulated, PipelinedSystemBeatsSerialOnBursts)
{
    std::vector<TransferRequest> burst = {
        {0.0, u::terabytes(512), "a"},
        {0.0, u::terabytes(512), "b"},
        {0.0, u::terabytes(512), "c"},
        {0.0, u::terabytes(512), "d"},
    };
    core::DhlConfig serial_cfg = core::defaultConfig();
    core::DhlConfig pipe_cfg = core::defaultConfig();
    pipe_cfg.track_mode = core::TrackMode::DualTrack;
    pipe_cfg.docking_stations = 4;

    const auto serial = replayDhlSimulated(burst, serial_cfg);
    const auto pipe = replayDhlSimulated(burst, pipe_cfg);
    EXPECT_LT(pipe.makespan, serial.makespan);
    EXPECT_LT(pipe.mean_latency, serial.mean_latency);
    EXPECT_NEAR(pipe.energy, serial.energy, serial.energy * 1e-9);
}

TEST(ReplayDhlSimulated, ReadsExtendLatency)
{
    const auto requests = threeBackups();
    const core::DhlConfig cfg = core::defaultConfig();
    const auto plain = replayDhlSimulated(requests, cfg, false);
    const auto reads = replayDhlSimulated(requests, cfg, true);
    EXPECT_GT(reads.mean_latency, plain.mean_latency);
    EXPECT_GT(reads.makespan, plain.makespan);
}

TEST(ReplayValidation, EmptyRequestsRejected)
{
    EXPECT_THROW(replayDhlAnalytical({}, core::defaultConfig()),
                 dhl::FatalError);
    EXPECT_THROW(
        replayNetworkAnalytical({}, network::findRoute("A0")),
        dhl::FatalError);
    EXPECT_THROW(replayDhlSimulated({}, core::defaultConfig()),
                 dhl::FatalError);
}

TEST(ReplayValidation, OutOfOrderTimestampsRejected)
{
    // A trace that goes backwards in time is corrupt input, not a
    // sorting request: fail loudly instead of silently reordering.
    std::vector<TransferRequest> shuffled = {
        {100.0, u::terabytes(256), "late"},
        {0.0, u::terabytes(256), "early"},
    };
    EXPECT_THROW(replayDhlSimulated(shuffled, core::defaultConfig()),
                 dhl::FatalError);
    EXPECT_THROW(replayDhlAnalytical(shuffled, core::defaultConfig()),
                 dhl::FatalError);
}

TEST(ReplayValidation, MalformedRequestsRejected)
{
    const auto cfg = core::defaultConfig();
    std::vector<TransferRequest> negative_time = {
        {-1.0, u::terabytes(1), "x"}};
    EXPECT_THROW(replayDhlSimulated(negative_time, cfg),
                 dhl::FatalError);
    std::vector<TransferRequest> zero_bytes = {{0.0, 0.0, "x"}};
    EXPECT_THROW(replayDhlSimulated(zero_bytes, cfg), dhl::FatalError);
    std::vector<TransferRequest> nan_time = {
        {std::numeric_limits<double>::quiet_NaN(), u::terabytes(1),
         "x"}};
    EXPECT_THROW(replayDhlSimulated(nan_time, cfg), dhl::FatalError);
}
