/**
 * @file
 * Property tests over the kinematics: invariants that must hold across
 * a dense parameter sweep (TEST_P), not just at the paper's three
 * design points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "physics/profile.hpp"

using namespace dhl::physics;

/** (length, v_max, accel) sweep. */
using KinParams = std::tuple<double, double, double>;

class KinematicsProperty : public ::testing::TestWithParam<KinParams>
{
  protected:
    double length() const { return std::get<0>(GetParam()); }
    double vmax() const { return std::get<1>(GetParam()); }
    double accel() const { return std::get<2>(GetParam()); }
};

TEST_P(KinematicsProperty, PaperApproxNeverExceedsTrapezoid)
{
    const double paper =
        travelTime(length(), vmax(), accel(), KinematicsMode::PaperApprox);
    const double exact =
        travelTime(length(), vmax(), accel(), KinematicsMode::Trapezoid);
    EXPECT_LE(paper, exact + 1e-12);
}

TEST_P(KinematicsProperty, TravelTimeLowerBoundedByCruise)
{
    // No profile can beat teleporting at v_max.
    const double t =
        travelTime(length(), vmax(), accel(), KinematicsMode::Trapezoid);
    EXPECT_GE(t, length() / vmax() - 1e-12);
}

TEST_P(KinematicsProperty, ProfileCoversExactlyTheTrack)
{
    VelocityProfile p(length(), vmax(), accel());
    EXPECT_NEAR(p.positionAt(p.totalTime()), length(),
                length() * 1e-9 + 1e-9);
    EXPECT_LE(p.peakSpeed(), vmax() + 1e-12);
}

TEST_P(KinematicsProperty, VelocityIntegratesToPosition)
{
    // Trapezoidal rule over the velocity curve must reproduce
    // positionAt to first order.
    VelocityProfile p(length(), vmax(), accel());
    const int steps = 2000;
    const double dt = p.totalTime() / steps;
    double x = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double t0 = i * dt;
        const double t1 = (i + 1) * dt;
        x += 0.5 * (p.velocityAt(t0) + p.velocityAt(t1)) * dt;
    }
    EXPECT_NEAR(x, length(), length() * 1e-3);
}

TEST_P(KinematicsProperty, VelocityNeverExceedsPeak)
{
    VelocityProfile p(length(), vmax(), accel());
    for (int i = 0; i <= 100; ++i) {
        const double t = p.totalTime() * i / 100.0;
        EXPECT_LE(p.velocityAt(t), p.peakSpeed() + 1e-9);
        EXPECT_GE(p.velocityAt(t), 0.0);
    }
}

TEST_P(KinematicsProperty, FasterCartsNeverTravelLonger)
{
    const double t_slow = travelTime(length(), vmax(), accel(),
                                     KinematicsMode::Trapezoid);
    const double t_fast = travelTime(length(), vmax() * 1.5, accel(),
                                     KinematicsMode::Trapezoid);
    EXPECT_LE(t_fast, t_slow + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KinematicsProperty,
    ::testing::Combine(
        ::testing::Values(10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0),
        ::testing::Values(10.0, 50.0, 100.0, 200.0, 300.0),
        ::testing::Values(100.0, 500.0, 1000.0, 2000.0)));
