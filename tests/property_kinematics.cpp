/**
 * @file
 * Property tests over the kinematics: invariants that must hold across
 * a dense parameter sweep (TEST_P), not just at the paper's three
 * design points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "physics/profile.hpp"

using namespace dhl::physics;
namespace qty = dhl::qty;

/** (length, v_max, accel) sweep. */
using KinParams = std::tuple<double, double, double>;

class KinematicsProperty : public ::testing::TestWithParam<KinParams>
{
  protected:
    qty::Metres length() const
    {
        return qty::Metres{std::get<0>(GetParam())};
    }
    qty::MetresPerSecond vmax() const
    {
        return qty::MetresPerSecond{std::get<1>(GetParam())};
    }
    qty::MetresPerSecondSquared accel() const
    {
        return qty::MetresPerSecondSquared{std::get<2>(GetParam())};
    }
};

TEST_P(KinematicsProperty, PaperApproxNeverExceedsTrapezoid)
{
    const qty::Seconds paper =
        travelTime(length(), vmax(), accel(), KinematicsMode::PaperApprox);
    const qty::Seconds exact =
        travelTime(length(), vmax(), accel(), KinematicsMode::Trapezoid);
    EXPECT_LE(paper.value(), exact.value() + 1e-12);
}

TEST_P(KinematicsProperty, TravelTimeLowerBoundedByCruise)
{
    // No profile can beat teleporting at v_max.
    const qty::Seconds t =
        travelTime(length(), vmax(), accel(), KinematicsMode::Trapezoid);
    EXPECT_GE(t.value(), (length() / vmax()).value() - 1e-12);
}

TEST_P(KinematicsProperty, ProfileCoversExactlyTheTrack)
{
    VelocityProfile p(length(), vmax(), accel());
    EXPECT_NEAR(p.positionAt(p.totalTime()).value(), length().value(),
                length().value() * 1e-9 + 1e-9);
    EXPECT_LE(p.peakSpeed().value(), vmax().value() + 1e-12);
}

TEST_P(KinematicsProperty, VelocityIntegratesToPosition)
{
    // Trapezoidal rule over the velocity curve must reproduce
    // positionAt to first order.
    VelocityProfile p(length(), vmax(), accel());
    const int steps = 2000;
    const double dt = p.totalTime().value() / steps;
    double x = 0.0;
    for (int i = 0; i < steps; ++i) {
        const qty::Seconds t0{i * dt};
        const qty::Seconds t1{(i + 1) * dt};
        x += 0.5 *
             (p.velocityAt(t0).value() + p.velocityAt(t1).value()) * dt;
    }
    EXPECT_NEAR(x, length().value(), length().value() * 1e-3);
}

TEST_P(KinematicsProperty, VelocityNeverExceedsPeak)
{
    VelocityProfile p(length(), vmax(), accel());
    for (int i = 0; i <= 100; ++i) {
        const qty::Seconds t = p.totalTime() * (i / 100.0);
        EXPECT_LE(p.velocityAt(t).value(), p.peakSpeed().value() + 1e-9);
        EXPECT_GE(p.velocityAt(t).value(), 0.0);
    }
}

TEST_P(KinematicsProperty, FasterCartsNeverTravelLonger)
{
    const qty::Seconds t_slow = travelTime(length(), vmax(), accel(),
                                           KinematicsMode::Trapezoid);
    const qty::Seconds t_fast = travelTime(length(), vmax() * 1.5,
                                           accel(),
                                           KinematicsMode::Trapezoid);
    EXPECT_LE(t_fast.value(), t_slow.value() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KinematicsProperty,
    ::testing::Combine(
        ::testing::Values(10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0),
        ::testing::Values(10.0, 50.0, 100.0, 200.0, 300.0),
        ::testing::Values(100.0, 500.0, 1000.0, 2000.0)));
