/**
 * @file
 * Integration: the event-driven DHL simulation must agree with the
 * closed-form analytical model across the whole Table VI design space
 * (experiment E11).  A scaled-down dataset keeps run times sane; the
 * agreement is exact because both sides share the same kinematics.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"

using namespace dhl::core;
namespace u = dhl::units;

class DesVsAnalytical : public ::testing::TestWithParam<TableVirow>
{};

TEST_P(DesVsAnalytical, SerialBulkAgreesExactly)
{
    const DhlConfig cfg = GetParam().config;
    // ~6 carts worth of data per configuration.
    const double dataset = 6.0 * cfg.cartCapacity().value() - u::terabytes(1);

    DhlSimulation des(cfg);
    const auto sim_result = des.runBulkTransfer(dataset);

    const AnalyticalModel model(cfg);
    const auto closed = model.bulk(dhl::qty::Bytes{dataset});

    EXPECT_EQ(sim_result.launches, closed.total_trips);
    EXPECT_NEAR(sim_result.total_time, closed.total_time.value(),
                closed.total_time.value() * 1e-9);
    EXPECT_NEAR(sim_result.total_energy, closed.total_energy.value(),
                closed.total_energy.value() * 1e-9);
    EXPECT_NEAR(sim_result.effective_bandwidth,
                closed.effective_bandwidth.value(),
                closed.effective_bandwidth.value() * 1e-9);
}

TEST_P(DesVsAnalytical, SerialWithReadsAgrees)
{
    const DhlConfig cfg = GetParam().config;
    const double dataset = 3.0 * cfg.cartCapacity().value();

    DhlSimulation des(cfg);
    BulkRunOptions des_opts;
    des_opts.include_read_time = true;
    const auto sim_result = des.runBulkTransfer(dataset, des_opts);

    const AnalyticalModel model(cfg);
    BulkOptions opts;
    opts.include_read_time = true;
    const auto closed = model.bulk(dhl::qty::Bytes{dataset}, opts);

    EXPECT_NEAR(sim_result.total_time, closed.total_time.value(),
                closed.total_time.value() * 1e-9);
    EXPECT_DOUBLE_EQ(sim_result.bytes_read, dataset);
}

INSTANTIATE_TEST_SUITE_P(
    AllTableViConfigs, DesVsAnalytical,
    ::testing::ValuesIn(tableViRows()),
    [](const ::testing::TestParamInfo<TableVirow> &info) {
        const auto &c = info.param.config;
        return "v" + std::to_string(static_cast<int>(c.max_speed)) + "_L" +
               std::to_string(static_cast<int>(c.track_length)) + "_n" +
               std::to_string(c.ssds_per_cart) + "_row" +
               std::to_string(info.index);
    });

TEST(DesVsAnalyticalTrapezoid, ExactKinematicsAlsoAgree)
{
    DhlConfig cfg = defaultConfig();
    cfg.kinematics = dhl::physics::KinematicsMode::Trapezoid;
    const double dataset = 4.0 * cfg.cartCapacity().value();

    DhlSimulation des(cfg);
    const auto sim_result = des.runBulkTransfer(dataset);
    const AnalyticalModel model(cfg);
    const auto closed = model.bulk(dhl::qty::Bytes{dataset});
    EXPECT_NEAR(sim_result.total_time, closed.total_time.value(),
                1e-6);
}
