/**
 * @file
 * Unit tests for the comparison helpers: Table VI rows and the §V-E
 * break-even analysis.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/comparison.hpp"

using namespace dhl::core;
namespace u = dhl::units;
namespace qty = dhl::qty;

TEST(DesignSpaceRowTest, DefaultRowMatchesPaper)
{
    const auto row =
        computeDesignSpaceRow(defaultConfig(), qty::petabytes(29.0));
    EXPECT_NEAR(u::toKilojoules(row.launch.energy), 15.0, 0.1);
    EXPECT_NEAR(row.time_speedup, 295.1, 295.1 * 0.01);
    ASSERT_EQ(row.routes.size(), 5u);
    EXPECT_EQ(row.routes[0].route_name, "A0");
    EXPECT_NEAR(row.routes[0].energy_reduction, 4.1, 0.1);
    EXPECT_EQ(row.routes[4].route_name, "C");
    EXPECT_NEAR(row.routes[4].energy_reduction, 87.7, 0.9);
}

TEST(DesignSpaceRowTest, SpeedupsIdenticalAcrossRoutes)
{
    // The time speedup only depends on the single-link rate, not the
    // route's power, so every route row shares it.
    const auto row =
        computeDesignSpaceRow(defaultConfig(), qty::petabytes(29.0));
    for (const auto &rc : row.routes)
        EXPECT_NEAR(rc.time_speedup, row.time_speedup, 1e-9);
}

TEST(BreakEvenTest, PaperSectionVeAnchor)
{
    // §V-E: a 10 m DHL at 10 m/s beats a single A0 link from ~360 GB.
    DhlConfig cfg = makeConfig(10.0, 10.0, 32);
    const auto be = breakEven(cfg, dhl::network::findRoute("A0"));
    // Trip time 6 + 10/10 + 10/2000 = 7.005 s; at 50 GB/s that is
    // ~350 GB (the paper rounds to 360 GB / 7.2 s).
    EXPECT_NEAR(be.bytes_for_time.value(), 350.25e9, 0.5e9);
    EXPECT_NEAR(be.bytes_for_time.value() / 1e9, 360.0, 15.0);
    // The energy threshold is tiny: the launch costs ~38 J while A0
    // burns 24 J every second.
    EXPECT_LT(be.bytes_for_energy.value(), be.bytes_for_time.value());
    EXPECT_DOUBLE_EQ(be.bytes_to_win().value(), be.bytes_for_time.value());
}

TEST(BreakEvenTest, EnergyThresholdScalesWithRoutePower)
{
    const DhlConfig cfg = defaultConfig();
    const auto vs_a0 = breakEven(cfg, dhl::network::findRoute("A0"));
    const auto vs_c = breakEven(cfg, dhl::network::findRoute("C"));
    // A richer route burns more power, so DHL wins on energy even
    // sooner.
    EXPECT_LT(vs_c.bytes_for_energy.value(), vs_a0.bytes_for_energy.value());
    // Time threshold is route-independent.
    EXPECT_DOUBLE_EQ(vs_c.bytes_for_time.value(),
                     vs_a0.bytes_for_time.value());
}

TEST(CrossoverSweepTest, FrontierShape)
{
    const auto points = crossoverSweep({10.0, 100.0, 500.0},
                                       {10.0, 50.0, 100.0});
    ASSERT_EQ(points.size(), 9u);
    for (const auto &p : points) {
        EXPECT_GT(p.trip_time.value(), 6.0); // docking floor
        EXPECT_GT(p.vs_a0.bytes_for_time.value(), 6.0 * 50e9);
    }
    // Longer tracks at the same speed take longer, so the break-even
    // dataset grows with distance.
    const auto &short_track = points[0]; // 10 m, 10 m/s
    const auto &long_track = points[6];  // 500 m, 10 m/s
    EXPECT_GT(long_track.vs_a0.bytes_for_time.value(),
              short_track.vs_a0.bytes_for_time.value());
}

TEST(CrossoverSweepTest, ClampsInfeasibleSpeeds)
{
    // A 10 m track cannot reach 200 m/s at 1000 m/s^2; the sweep clamps
    // to the triangular peak instead of failing.
    const auto points = crossoverSweep({10.0}, {200.0});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_NEAR(points[0].max_speed.value(), 100.0, 1e-9);
}

TEST(DesignSpaceRowTest, AllTableViRowsComputable)
{
    for (const auto &row : tableViRows()) {
        const auto computed =
            computeDesignSpaceRow(row.config, qty::petabytes(29.0));
        EXPECT_GT(computed.bulk.total_trips, 0u);
        EXPECT_GT(computed.time_speedup, 100.0);
    }
}
