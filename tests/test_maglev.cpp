/**
 * @file
 * Unit tests for the maglev mass and drag models, pinned to the paper's
 * cart masses (161 / 282 / 524 g).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "physics/maglev.hpp"

using namespace dhl::physics;
namespace u = dhl::units;

TEST(CartMass, PaperCartMasses)
{
    // 16 / 32 / 64 Sabrent 8 TB M.2 SSDs at 5.67 g each, 30 g frame,
    // 10 % magnets, 15 % fin => 161 / 282 / 524 g total.
    const double ssd = u::grams(5.67);
    EXPECT_NEAR(u::toGrams(cartMass(16 * ssd).total_mass), 161.0, 0.5);
    EXPECT_NEAR(u::toGrams(cartMass(32 * ssd).total_mass), 282.0, 0.5);
    EXPECT_NEAR(u::toGrams(cartMass(64 * ssd).total_mass), 524.0, 0.5);
}

TEST(CartMass, BreakdownSumsToTotal)
{
    const auto b = cartMass(u::grams(181.44));
    EXPECT_NEAR(b.payload_mass + b.frame_mass + b.magnet_mass + b.fin_mass,
                b.total_mass, 1e-12);
    EXPECT_NEAR(b.magnet_mass / b.total_mass, 0.10, 1e-12);
    EXPECT_NEAR(b.fin_mass / b.total_mass, 0.15, 1e-12);
}

TEST(CartMass, CustomFractions)
{
    CartMassConfig cfg;
    cfg.magnet_fraction = 0.2;
    cfg.fin_fraction = 0.2;
    cfg.frame_mass = 0.05;
    const auto b = cartMass(0.1, cfg);
    EXPECT_NEAR(b.total_mass, 0.15 / 0.6, 1e-12);
}

TEST(CartMass, RejectsImpossibleFractions)
{
    CartMassConfig cfg;
    cfg.magnet_fraction = 0.6;
    cfg.fin_fraction = 0.5;
    EXPECT_THROW(cartMass(0.1, cfg), dhl::FatalError);
    EXPECT_THROW(cartMass(-0.1), dhl::FatalError);
}

TEST(DragLoss, PaperFormula)
{
    // L_d = (g + 2 c2) M x / c1 with c2 = 0, c1 = 10.
    LevitationConfig cfg;
    const double loss = dragLoss(0.282, 500.0, cfg);
    EXPECT_NEAR(loss, 9.80665 * 0.282 * 500.0 / 10.0, 1e-9);
}

TEST(DragLoss, NegligibleVsLaunchEnergy)
{
    // The paper's claim: drag loss is negligible next to the 15 kJ
    // launch energy for the default cart.
    const double loss = dragLoss(0.282, 500.0);
    EXPECT_LT(loss, 0.01 * 15040.0);
}

TEST(DragLoss, StabiliserForceIncreasesLoss)
{
    LevitationConfig strong;
    strong.stabiliser_accel = 5.0;
    EXPECT_GT(dragLoss(0.282, 500.0, strong), dragLoss(0.282, 500.0));
}

TEST(DragLoss, ScalesLinearlyInMassAndDistance)
{
    EXPECT_NEAR(dragLoss(0.564, 500.0), 2.0 * dragLoss(0.282, 500.0),
                1e-12);
    EXPECT_NEAR(dragLoss(0.282, 1000.0), 2.0 * dragLoss(0.282, 500.0),
                1e-12);
}

TEST(LiftToDrag, SaturatesTowardsAsymptote)
{
    EXPECT_DOUBLE_EQ(liftToDragAtSpeed(0.0), 0.0);
    EXPECT_NEAR(liftToDragAtSpeed(10.0, 50.0, 10.0), 25.0, 1e-12);
    // Paper: ratio exceeds 50 at a few dozen m/s; our curve reaches
    // >80 % of the asymptote at 40 m/s.
    EXPECT_GE(liftToDragAtSpeed(40.0, 50.0, 10.0), 0.8 * 50.0);
    EXPECT_LT(liftToDragAtSpeed(1000.0, 50.0, 10.0), 50.0);
}

TEST(RequiredMagnetFraction, TenPercentNeedsTenG)
{
    // A 10 % magnet fraction suffices when magnets deliver ~10 g of
    // lift per unit mass (i.e. ~98 N/kg).
    EXPECT_NEAR(requiredMagnetFraction(10.0 * 9.80665), 0.1, 1e-12);
    EXPECT_THROW(requiredMagnetFraction(5.0), dhl::FatalError);
    EXPECT_THROW(requiredMagnetFraction(0.0), dhl::FatalError);
}
