/**
 * @file
 * Unit tests for the maglev mass and drag models, pinned to the paper's
 * cart masses (161 / 282 / 524 g).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "physics/maglev.hpp"

using namespace dhl::physics;
using namespace dhl::qty::literals;
namespace u = dhl::units;
namespace qty = dhl::qty;

TEST(CartMass, PaperCartMasses)
{
    // 16 / 32 / 64 Sabrent 8 TB M.2 SSDs at 5.67 g each, 30 g frame,
    // 10 % magnets, 15 % fin => 161 / 282 / 524 g total.
    const qty::Kilograms ssd = qty::grams(5.67);
    EXPECT_NEAR(u::toGrams(cartMass(16.0 * ssd).total_mass.value()),
                161.0, 0.5);
    EXPECT_NEAR(u::toGrams(cartMass(32.0 * ssd).total_mass.value()),
                282.0, 0.5);
    EXPECT_NEAR(u::toGrams(cartMass(64.0 * ssd).total_mass.value()),
                524.0, 0.5);
}

TEST(CartMass, BreakdownSumsToTotal)
{
    const auto b = cartMass(qty::grams(181.44));
    EXPECT_NEAR((b.payload_mass + b.frame_mass + b.magnet_mass +
                 b.fin_mass).value(),
                b.total_mass.value(), 1e-12);
    EXPECT_NEAR(b.magnet_mass / b.total_mass, 0.10, 1e-12);
    EXPECT_NEAR(b.fin_mass / b.total_mass, 0.15, 1e-12);
}

TEST(CartMass, CustomFractions)
{
    CartMassConfig cfg;
    cfg.magnet_fraction = 0.2;
    cfg.fin_fraction = 0.2;
    cfg.frame_mass = 0.05;
    const auto b = cartMass(qty::Kilograms{0.1}, cfg);
    EXPECT_NEAR(b.total_mass.value(), 0.15 / 0.6, 1e-12);
}

TEST(CartMass, RejectsImpossibleFractions)
{
    CartMassConfig cfg;
    cfg.magnet_fraction = 0.6;
    cfg.fin_fraction = 0.5;
    EXPECT_THROW(cartMass(qty::Kilograms{0.1}, cfg), dhl::FatalError);
    EXPECT_THROW(cartMass(qty::Kilograms{-0.1}), dhl::FatalError);
}

TEST(DragLoss, PaperFormula)
{
    // L_d = (g + 2 c2) M x / c1 with c2 = 0, c1 = 10.
    LevitationConfig cfg;
    const qty::Joules loss = dragLoss(0.282_kg, 500.0_m, cfg);
    EXPECT_NEAR(loss.value(), 9.80665 * 0.282 * 500.0 / 10.0, 1e-9);
}

TEST(DragLoss, NegligibleVsLaunchEnergy)
{
    // The paper's claim: drag loss is negligible next to the 15 kJ
    // launch energy for the default cart.
    const qty::Joules loss = dragLoss(0.282_kg, 500.0_m);
    EXPECT_LT(loss.value(), 0.01 * 15040.0);
}

TEST(DragLoss, StabiliserForceIncreasesLoss)
{
    LevitationConfig strong;
    strong.stabiliser_accel = 5.0;
    EXPECT_GT(dragLoss(0.282_kg, 500.0_m, strong).value(),
              dragLoss(0.282_kg, 500.0_m).value());
}

TEST(DragLoss, ScalesLinearlyInMassAndDistance)
{
    EXPECT_NEAR(dragLoss(0.564_kg, 500.0_m).value(),
                2.0 * dragLoss(0.282_kg, 500.0_m).value(), 1e-12);
    EXPECT_NEAR(dragLoss(0.282_kg, 1000.0_m).value(),
                2.0 * dragLoss(0.282_kg, 500.0_m).value(), 1e-12);
}

TEST(LiftToDrag, SaturatesTowardsAsymptote)
{
    EXPECT_DOUBLE_EQ(liftToDragAtSpeed(0.0_mps), 0.0);
    EXPECT_NEAR(liftToDragAtSpeed(10.0_mps, 50.0, 10.0_mps), 25.0, 1e-12);
    // Paper: ratio exceeds 50 at a few dozen m/s; our curve reaches
    // >80 % of the asymptote at 40 m/s.
    EXPECT_GE(liftToDragAtSpeed(40.0_mps, 50.0, 10.0_mps), 0.8 * 50.0);
    EXPECT_LT(liftToDragAtSpeed(1000.0_mps, 50.0, 10.0_mps), 50.0);
}

TEST(RequiredMagnetFraction, TenPercentNeedsTenG)
{
    // A 10 % magnet fraction suffices when magnets deliver ~10 g of
    // lift per unit mass (i.e. ~98 N/kg).
    EXPECT_NEAR(requiredMagnetFraction(
                    qty::MetresPerSecondSquared{10.0 * 9.80665}),
                0.1, 1e-12);
    EXPECT_THROW(requiredMagnetFraction(qty::MetresPerSecondSquared{5.0}),
                 dhl::FatalError);
    EXPECT_THROW(requiredMagnetFraction(qty::MetresPerSecondSquared{0.0}),
                 dhl::FatalError);
}
