/**
 * @file
 * Property tests over the bulk-transfer model: trip accounting,
 * monotonicity in the dataset size, and DES/closed-form agreement on
 * randomised configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"

using namespace dhl::core;
using dhl::Rng;
namespace u = dhl::units;

class BulkProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /** A random valid configuration drawn from the seed. */
    DhlConfig
    randomConfig(Rng &rng) const
    {
        DhlConfig cfg = makeConfig(
            rng.uniform(50.0, 300.0), rng.uniform(200.0, 2000.0),
            static_cast<std::size_t>(rng.uniformInt(8, 64)));
        cfg.dock_time = rng.uniform(1.0, 5.0);
        return cfg;
    }
};

TEST_P(BulkProperty, TripCountIsCeilOfDatasetOverCapacity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 20; ++i) {
        const DhlConfig cfg = randomConfig(rng);
        const AnalyticalModel m(cfg);
        const double bytes =
            rng.uniform(0.1, 40.0) * cfg.cartCapacity().value();
        const auto bulk = m.bulk(dhl::qty::Bytes{bytes});
        EXPECT_EQ(bulk.loaded_trips,
                  static_cast<std::uint64_t>(
                      std::ceil(bytes / cfg.cartCapacity().value())));
        EXPECT_EQ(bulk.total_trips, 2 * bulk.loaded_trips);
    }
}

TEST_P(BulkProperty, TimeAndEnergyMonotoneInDataset)
{
    Rng rng(GetParam() + 100);
    const DhlConfig cfg = randomConfig(rng);
    const AnalyticalModel m(cfg);
    double prev_time = 0.0, prev_energy = 0.0;
    for (double mult = 0.5; mult < 20.0; mult *= 1.7) {
        const auto bulk =
            m.bulk(dhl::qty::Bytes{mult * cfg.cartCapacity().value()});
        EXPECT_GE(bulk.total_time.value(), prev_time);
        EXPECT_GE(bulk.total_energy.value(), prev_energy);
        prev_time = bulk.total_time.value();
        prev_energy = bulk.total_energy.value();
    }
}

TEST_P(BulkProperty, EffectiveBandwidthBoundedByEmbodiedBandwidth)
{
    Rng rng(GetParam() + 200);
    for (int i = 0; i < 10; ++i) {
        const DhlConfig cfg = randomConfig(rng);
        const AnalyticalModel m(cfg);
        const double bytes =
            rng.uniform(1.0, 10.0) * cfg.cartCapacity().value();
        const auto bulk = m.bulk(dhl::qty::Bytes{bytes});
        // Serial with returns: effective bandwidth is at most half the
        // single-launch embodied bandwidth.
        EXPECT_LE(bulk.effective_bandwidth.value(),
                  0.5 * m.launch().bandwidth.value() * (1.0 + 1e-9));
    }
}

TEST_P(BulkProperty, DesAgreesOnRandomConfigs)
{
    Rng rng(GetParam() + 300);
    const DhlConfig cfg = randomConfig(rng);
    const double bytes =
        rng.uniform(1.5, 6.0) * cfg.cartCapacity().value();

    DhlSimulation des(cfg);
    const auto sim_result = des.runBulkTransfer(bytes);
    const AnalyticalModel model(cfg);
    const auto closed = model.bulk(dhl::qty::Bytes{bytes});
    EXPECT_EQ(sim_result.launches, closed.total_trips);
    EXPECT_NEAR(sim_result.total_time, closed.total_time.value(),
                closed.total_time.value() * 1e-9);
    EXPECT_NEAR(sim_result.total_energy, closed.total_energy.value(),
                closed.total_energy.value() * 1e-9);
}

TEST_P(BulkProperty, SpeedupVsNetworkGrowsWithRoutePower)
{
    Rng rng(GetParam() + 400);
    const DhlConfig cfg = randomConfig(rng);
    const AnalyticalModel m(cfg);
    const dhl::qty::Bytes bytes = dhl::qty::petabytes(2.0);
    double prev_reduction = 0.0;
    for (const auto &route : dhl::network::canonicalRoutes()) {
        const auto cmp = m.compareBulk(bytes, route);
        EXPECT_GT(cmp.energy_reduction, prev_reduction) << route.name();
        prev_reduction = cmp.energy_reduction;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkProperty,
                         ::testing::Values(7u, 11u, 17u, 23u, 31u));
