/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "sim/simulator.hpp"

using dhl::sim::EventHandle;
using dhl::sim::Simulator;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_DOUBLE_EQ(sim.run(), 0.0);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoWithinSameTimestamp)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    double fired_at = -1.0;
    sim.schedule(1.0, [&] {
        sim.schedule(2.0, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, ZeroDelayFiresAtSameTime)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        sim.schedule(0.0, [&] {
            ++fired;
            EXPECT_DOUBLE_EQ(sim.now(), 1.0);
        });
    });
    sim.run();
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, RejectsBadDelays)
{
    Simulator sim;
    EXPECT_THROW(sim.schedule(-1.0, [] {}), dhl::FatalError);
    EXPECT_THROW(sim.scheduleAt(-0.5, [] {}), dhl::FatalError);
    EXPECT_THROW(
        sim.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}),
        dhl::FatalError);
    EXPECT_THROW(
        sim.schedule(std::numeric_limits<double>::infinity(), [] {}),
        dhl::FatalError);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    int fired = 0;
    EventHandle h = sim.schedule(1.0, [&] { ++fired; });
    EXPECT_TRUE(sim.cancel(h));
    EXPECT_FALSE(sim.cancel(h)); // double cancel
    sim.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, CancelAfterFireReturnsFalse)
{
    Simulator sim;
    EventHandle h = sim.schedule(1.0, [] {});
    sim.run();
    EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelInvalidHandle)
{
    Simulator sim;
    EXPECT_FALSE(sim.cancel(EventHandle()));
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    std::vector<double> fired;
    sim.schedule(1.0, [&] { fired.push_back(1.0); });
    sim.schedule(2.0, [&] { fired.push_back(2.0); });
    sim.schedule(5.0, [&] { fired.push_back(5.0); });

    EXPECT_DOUBLE_EQ(sim.runUntil(2.0), 2.0);
    EXPECT_EQ(fired.size(), 2u); // events at exactly `until` fire
    EXPECT_EQ(sim.pendingEvents(), 1u);

    sim.run();
    EXPECT_EQ(fired.size(), 3u);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.runUntil(10.0), 10.0);
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
    EXPECT_THROW(sim.runUntil(5.0), dhl::FatalError);
}

TEST(Simulator, StepExecutesBoundedEvents)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        sim.schedule(static_cast<double>(i + 1), [&] { ++fired; });
    EXPECT_EQ(sim.step(2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.step(100), 3u);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.step(), 0u);
}

TEST(Simulator, StopEndsRunEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2.0, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.stopRequested());
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run(); // resumes
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, KernelStatsTrackCounts)
{
    Simulator sim;
    auto h = sim.schedule(1.0, [] {});
    sim.schedule(2.0, [] {});
    sim.cancel(h);
    sim.run();
    const auto *scheduled = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_scheduled"));
    const auto *executed = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_executed"));
    const auto *cancelled = dynamic_cast<const dhl::stats::Counter *>(
        sim.statsGroup().find("events_cancelled"));
    ASSERT_NE(scheduled, nullptr);
    ASSERT_NE(executed, nullptr);
    ASSERT_NE(cancelled, nullptr);
    EXPECT_EQ(scheduled->value(), 2u);
    EXPECT_EQ(executed->value(), 1u);
    EXPECT_EQ(cancelled->value(), 1u);
}

TEST(Simulator, ManyEventsStressOrdering)
{
    Simulator sim;
    double last = -1.0;
    bool monotonic = true;
    for (int i = 0; i < 10000; ++i) {
        const double t = static_cast<double>((i * 7919) % 1000);
        sim.schedule(t, [&, t] {
            if (t < last)
                monotonic = false;
            last = t;
        });
    }
    sim.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(sim.eventsExecuted(), 10000u);
}
