/**
 * @file
 * Unit tests for the rough-vacuum tube model — substantiates the
 * paper's "minimal power to maintain" assumption.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "physics/vacuum.hpp"

using namespace dhl::physics;
namespace u = dhl::units;
namespace qty = dhl::qty;
using namespace dhl::qty::literals;

TEST(TubeVolume, CylinderGeometry)
{
    VacuumConfig cfg;
    cfg.tube_diameter = 0.30;
    const qty::CubicMetres v = tubeVolume(500.0_m, cfg);
    EXPECT_NEAR(v.value(), M_PI * 0.15 * 0.15 * 500.0, 1e-9);
    EXPECT_DOUBLE_EQ(tubeVolume(0.0_m, cfg).value(), 0.0);
}

TEST(PumpDown, IsothermalWork)
{
    VacuumConfig cfg; // 1 mbar, 30 % pump efficiency
    const qty::Joules e = pumpDownEnergy(500.0_m, cfg);
    const qty::CubicMetres v = tubeVolume(500.0_m, cfg);
    const double ideal = u::kAtmospherePa * v.value() *
                         std::log(u::kAtmospherePa / 100.0);
    EXPECT_NEAR(e.value(), ideal / 0.30, 1e-6);
    EXPECT_GT(e.value(), ideal); // pump inefficiency
}

TEST(PumpDown, OneOffCostIsModest)
{
    // Even the one-off pump-down of a 500 m tube is tens of MJ — the
    // cost of a handful of 29 PB optical transfers — and is paid once.
    const qty::Joules e = pumpDownEnergy(500.0_m);
    EXPECT_LT(e.value(), 100e6);
}

TEST(MaintenancePower, NegligibleVsDhlAveragePower)
{
    // The paper's operating assumption: holding the vacuum draws far
    // less than the DHL's ~1.75 kW average shuttle power.
    const qty::Watts p = maintenancePower(500.0_m);
    EXPECT_LT(p.value(), 100.0);
    EXPECT_GT(p.value(), 0.0);
}

TEST(MaintenancePower, ScalesWithLeakRate)
{
    VacuumConfig tight;
    tight.leak_volumes_per_day = 0.01;
    VacuumConfig leaky;
    leaky.leak_volumes_per_day = 0.10;
    EXPECT_NEAR(maintenancePower(500.0_m, leaky).value(),
                10.0 * maintenancePower(500.0_m, tight).value(), 1e-9);
}

TEST(AeroDrag, CubicInSpeedAndLinearInPressure)
{
    VacuumConfig cfg;
    const qty::Watts p1 =
        aeroDragPower(100.0_mps, qty::SquareMetres{0.005}, 1.0, cfg);
    const qty::Watts p2 =
        aeroDragPower(200.0_mps, qty::SquareMetres{0.005}, 1.0, cfg);
    EXPECT_NEAR(p2 / p1, 8.0, 1e-9);

    VacuumConfig half = cfg;
    half.pressure = cfg.pressure / 2.0;
    EXPECT_NEAR(
        aeroDragPower(200.0_mps, qty::SquareMetres{0.005}, 1.0, half)
            .value(),
        0.5 * aeroDragPower(200.0_mps, qty::SquareMetres{0.005}, 1.0, cfg)
                  .value(),
        1e-9);
}

TEST(AeroDrag, NegligibleAtRoughVacuum)
{
    // At 1 mbar and 200 m/s the residual-gas drag on the cart's small
    // frontal area is a few watts — negligible next to the LIM's
    // 75 kW peak.
    const qty::Watts p =
        aeroDragPower(200.0_mps, qty::SquareMetres{0.060 * 0.080});
    EXPECT_LT(p.value(), 50.0);
}

TEST(VacuumValidation, RejectsNonsense)
{
    VacuumConfig bad;
    bad.pressure = 0.0;
    EXPECT_THROW(tubeVolume(10.0_m, bad), dhl::FatalError);
    bad = VacuumConfig{};
    bad.pressure = 2.0 * u::kAtmospherePa;
    EXPECT_THROW(pumpDownEnergy(10.0_m, bad), dhl::FatalError);
    bad = VacuumConfig{};
    bad.pump_efficiency = 0.0;
    EXPECT_THROW(pumpDownEnergy(10.0_m, bad), dhl::FatalError);
    bad = VacuumConfig{};
    bad.tube_diameter = -0.1;
    EXPECT_THROW(tubeVolume(10.0_m, bad), dhl::FatalError);
    EXPECT_THROW(aeroDragPower(-1.0_mps, qty::SquareMetres{0.005}),
                 dhl::FatalError);
    EXPECT_THROW(aeroDragPower(10.0_mps, qty::SquareMetres{0.0}),
                 dhl::FatalError);
}
