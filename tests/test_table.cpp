/**
 * @file
 * Unit tests for the ASCII table / CSV renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

using dhl::Align;
using dhl::TextTable;

TEST(TextTableTest, BasicRender)
{
    TextTable t({"Name", "Value"});
    t.addRow({"energy", "15"});
    t.addRow({"time", "8.6"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("energy"), std::string::npos);
    EXPECT_NE(out.find("8.6"), std::string::npos);
    EXPECT_NE(out.find("+"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numColumns(), 2u);
}

TEST(TextTableTest, RejectsMismatchedRow)
{
    TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), dhl::FatalError);
    EXPECT_THROW(TextTable({}), dhl::FatalError);
}

TEST(TextTableTest, AlignmentPadding)
{
    TextTable t({"L", "R"});
    t.setAlignments({Align::Left, Align::Right});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Left column pads on the right, right column pads on the left.
    EXPECT_NE(out.find("| x      |"), std::string::npos);
    EXPECT_NE(out.find("|  1 |"), std::string::npos);
}

TEST(TextTableTest, SeparatorRows)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::ostringstream os;
    t.print(os);
    // 3 boxed rules + 1 separator = 4 '+--+' lines.
    int rules = 0;
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] == '+')
            ++rules;
    }
    EXPECT_EQ(rules, 4);
}

TEST(TextTableTest, CsvEscaping)
{
    TextTable t({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    t.addSeparator(); // skipped in CSV
    t.addRow({"plain", "ok"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(out.find("plain,ok"), std::string::npos);
}

TEST(CellHelpers, Formatting)
{
    EXPECT_EQ(dhl::cell(295.08, 4), "295.1");
    EXPECT_EQ(dhl::cellTimes(4.06, 2), "4.1x");
}
