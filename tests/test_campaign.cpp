/**
 * @file
 * Unit tests for the training-campaign model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "mlsim/campaign.hpp"

using namespace dhl;
using namespace dhl::mlsim;
namespace u = dhl::units;

namespace {

CampaignModel
defaultCampaign(const char *route = "C")
{
    return CampaignModel(core::defaultConfig(),
                         network::findRoute(route));
}

} // namespace

TEST(CampaignConfigTest, Validation)
{
    CampaignConfig ok;
    EXPECT_NO_THROW(validate(ok));
    CampaignConfig bad;
    bad.initial_dataset = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = CampaignConfig{};
    bad.monthly_growth = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = CampaignConfig{};
    bad.months = 0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(CampaignTest, MonthlyStructure)
{
    CampaignConfig cfg;
    cfg.initial_dataset = u::petabytes(29);
    cfg.monthly_growth = u::petabytes(2);
    cfg.trainings_per_month = 4.0;
    cfg.months = 12;

    const auto report = defaultCampaign().run(cfg);
    ASSERT_EQ(report.months.size(), 12u);
    EXPECT_DOUBLE_EQ(report.months[0].dataset_bytes, u::petabytes(29));
    EXPECT_DOUBLE_EQ(report.months[11].dataset_bytes, u::petabytes(51));
    EXPECT_DOUBLE_EQ(report.months[0].bytes_moved, u::petabytes(116));
    // Totals equal the sum of months.
    double bytes = 0.0, dhl_e = 0.0, net_e = 0.0;
    for (const auto &m : report.months) {
        bytes += m.bytes_moved;
        dhl_e += m.dhl_energy;
        net_e += m.net_energy;
    }
    EXPECT_NEAR(report.total_bytes, bytes, bytes * 1e-12);
    EXPECT_NEAR(report.dhl_energy, dhl_e, dhl_e * 1e-12);
    EXPECT_NEAR(report.net_energy, net_e, net_e * 1e-12);
}

TEST(CampaignTest, ReductionsMatchSingleTransferRatios)
{
    // Because each month scales both sides by the same dataset and
    // training rate, the campaign-level energy reduction equals the
    // per-transfer Table VI reduction (~87x for route C) up to cart
    // quantisation.
    CampaignConfig cfg;
    cfg.months = 6;
    const auto report = defaultCampaign("C").run(cfg);
    EXPECT_NEAR(report.energyReduction(), 87.3, 1.5);
    EXPECT_NEAR(report.timeReduction(), 295.0, 6.0);
}

TEST(CampaignTest, GrowthCompoundsSavings)
{
    // More growth, more absolute energy saved over the campaign.
    CampaignConfig flat;
    flat.monthly_growth = 0.0;
    CampaignConfig growing;
    growing.monthly_growth = u::petabytes(4);
    const auto m = defaultCampaign();
    EXPECT_GT(m.run(growing).energySaved(), m.run(flat).energySaved());
    // And savings are already colossal flat: hundreds of MJ over two
    // years of route-C traffic.
    EXPECT_GT(m.run(flat).energySaved(), 100e6);
}

TEST(CampaignTest, ParallelRunIsBitIdenticalToSerial)
{
    // Months are independent; evaluating them across a pool must give
    // exactly the serial report, including the accumulated totals.
    CampaignConfig cfg;
    cfg.monthly_growth = u::petabytes(2);
    cfg.months = 36;
    const auto model = defaultCampaign();
    const auto serial = model.run(cfg);
    ThreadPool pool(4);
    const auto parallel = model.run(cfg, &pool);

    ASSERT_EQ(parallel.months.size(), serial.months.size());
    for (std::size_t i = 0; i < serial.months.size(); ++i) {
        EXPECT_EQ(parallel.months[i].dataset_bytes,
                  serial.months[i].dataset_bytes);
        EXPECT_EQ(parallel.months[i].dhl_time, serial.months[i].dhl_time);
        EXPECT_EQ(parallel.months[i].dhl_energy,
                  serial.months[i].dhl_energy);
        EXPECT_EQ(parallel.months[i].net_energy,
                  serial.months[i].net_energy);
    }
    EXPECT_EQ(parallel.total_bytes, serial.total_bytes);
    EXPECT_EQ(parallel.dhl_time, serial.dhl_time);
    EXPECT_EQ(parallel.dhl_energy, serial.dhl_energy);
    EXPECT_EQ(parallel.net_time, serial.net_time);
    EXPECT_EQ(parallel.net_energy, serial.net_energy);
}

TEST(CampaignTest, MonthlyEnergyMonotoneUnderGrowth)
{
    CampaignConfig cfg;
    cfg.monthly_growth = u::petabytes(2);
    const auto report = defaultCampaign().run(cfg);
    for (std::size_t i = 1; i < report.months.size(); ++i) {
        EXPECT_GE(report.months[i].dhl_energy,
                  report.months[i - 1].dhl_energy);
        EXPECT_GT(report.months[i].net_energy,
                  report.months[i - 1].net_energy);
    }
}
