/**
 * @file
 * Property tests over the multi-stop DHL: hop metrics and track
 * admission invariants across randomised stop layouts and transit
 * sequences.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "dhl/multistop.hpp"
#include "sim/simulator.hpp"

using namespace dhl::core;
using dhl::Rng;
using dhl::sim::Simulator;

namespace {

MultiStopConfig
randomLayout(Rng &rng)
{
    MultiStopConfig cfg;
    cfg.stop_positions = {0.0};
    const int stops = static_cast<int>(rng.uniformInt(2, 6));
    double pos = 0.0;
    for (int i = 1; i < stops; ++i) {
        pos += rng.uniform(20.0, 400.0);
        cfg.stop_positions.push_back(pos);
    }
    return cfg;
}

} // namespace

class MultiStopProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MultiStopProperty, HopMetricsAreSymmetricAndPositive)
{
    Rng rng(GetParam());
    const MultiStopConfig cfg = randomLayout(rng);
    MultiStopModel m(cfg);
    for (StopId a = 0; a < m.numStops(); ++a) {
        for (StopId b = 0; b < m.numStops(); ++b) {
            if (a == b)
                continue;
            const HopMetrics fwd = m.hop(a, b);
            const HopMetrics rev = m.hop(b, a);
            EXPECT_DOUBLE_EQ(fwd.distance.value(), rev.distance.value());
            EXPECT_DOUBLE_EQ(fwd.trip_time.value(),
                             rev.trip_time.value());
            EXPECT_DOUBLE_EQ(fwd.energy.value(), rev.energy.value());
            EXPECT_GT(fwd.travel_time.value(), 0.0);
            EXPECT_GT(fwd.energy.value(), 0.0);
            EXPECT_LE(fwd.peak_speed.value(),
                      cfg.base.max_speed + 1e-12);
        }
    }
}

TEST_P(MultiStopProperty, TriangleInequalityOnTravelTime)
{
    // Going direct is never slower (in tube time) than stopping over:
    // the stopover adds docking and re-acceleration.
    Rng rng(GetParam() + 50);
    const MultiStopConfig cfg = randomLayout(rng);
    MultiStopModel m(cfg);
    if (m.numStops() < 3)
        return;
    for (StopId mid = 1; mid + 1 < m.numStops(); ++mid) {
        const double direct =
            m.hop(0, m.numStops() - 1).trip_time.value();
        const double via =
            (m.hop(0, mid).trip_time +
             m.hop(mid, m.numStops() - 1).trip_time)
                .value();
        EXPECT_LE(direct, via + 1e-9);
    }
}

TEST_P(MultiStopProperty, AdmissionNeverOverlapsSegments)
{
    // Issue a random transit sequence; verify granted windows never
    // overlap on any shared segment.
    Rng rng(GetParam() + 100);
    const MultiStopConfig cfg = randomLayout(rng);
    Simulator sim;
    MultiStopTrack track(sim, cfg);
    MultiStopModel model(cfg);

    struct Window
    {
        StopId lo, hi;
        double start, end;
    };
    std::vector<Window> windows;
    for (int i = 0; i < 40; ++i) {
        const auto a = static_cast<StopId>(
            rng.uniformInt(0, static_cast<int>(model.numStops()) - 1));
        StopId b;
        do {
            b = static_cast<StopId>(rng.uniformInt(
                0, static_cast<int>(model.numStops()) - 1));
        } while (b == a);
        const auto g = track.reserveTransit(a, b);
        windows.push_back(Window{std::min(a, b), std::max(a, b),
                                 g.depart_time, g.arrive_time});
    }

    for (std::size_t i = 0; i < windows.size(); ++i) {
        for (std::size_t j = i + 1; j < windows.size(); ++j) {
            const auto &x = windows[i];
            const auto &y = windows[j];
            // Shared segment?
            const StopId lo = std::max(x.lo, y.lo);
            const StopId hi = std::min(x.hi, y.hi);
            if (lo >= hi)
                continue; // disjoint spans
            const bool overlap =
                x.start < y.end - 1e-12 && y.start < x.end - 1e-12;
            EXPECT_FALSE(overlap)
                << "transits " << i << " and " << j
                << " overlap on a shared segment";
        }
    }
    EXPECT_EQ(track.transits(), 40u);
}

TEST_P(MultiStopProperty, GrantsNeverStartInThePast)
{
    Rng rng(GetParam() + 200);
    const MultiStopConfig cfg = randomLayout(rng);
    Simulator sim;
    MultiStopTrack track(sim, cfg);
    for (int i = 0; i < 10; ++i) {
        sim.schedule(rng.uniform(0.0, 10.0), [&track, &rng, &sim] {
            const auto g = track.reserveTransit(0, 1);
            EXPECT_GE(g.depart_time, sim.now() - 1e-12);
        });
    }
    sim.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiStopProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));
