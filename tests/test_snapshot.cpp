/**
 * @file
 * Unit tests for the snapshot layer (sim/snapshot.hpp): scoped
 * key/value round-trips, bit-exact doubles, RNG stream positions, and
 * the Simulator kernel's own save/restore contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

using namespace dhl;
using namespace dhl::sim;

TEST(SnapshotTest, ScopedRoundTrip)
{
    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        w.putString("name", "fleet");
        w.putU64("tracks", 7);
        {
            SnapshotScope<SnapshotWriter> scope(w, "t0");
            w.putI64("delta", -42);
            w.putBool("up", true);
            {
                SnapshotScope<SnapshotWriter> inner(w, "track");
                w.putU64("launches", 9);
            }
        }
        w.putBool("done", false);
    }

    SnapshotReader r(doc);
    EXPECT_EQ(r.getString("name"), "fleet");
    EXPECT_EQ(r.getU64("tracks"), 7u);
    EXPECT_FALSE(r.getBool("done"));
    {
        SnapshotScope<SnapshotReader> scope(r, "t0");
        EXPECT_EQ(r.getI64("delta"), -42);
        EXPECT_TRUE(r.getBool("up"));
        EXPECT_TRUE(r.has("track.launches"));
        {
            SnapshotScope<SnapshotReader> inner(r, "track");
            EXPECT_EQ(r.getU64("launches"), 9u);
        }
    }
    EXPECT_FALSE(r.has("t0"));          // scopes are prefixes, not keys
    EXPECT_FALSE(r.has("nonexistent"));
}

TEST(SnapshotTest, DoublesAreBitExact)
{
    // The equivalence oracle depends on restored doubles being the
    // *identical* IEEE-754 value, not a decimal round trip.
    const double values[] = {
        0.1 + 0.2, // classic non-representable sum
        1.0 / 3.0,
        -0.0,
        5e-324,                                  // smallest denormal
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
    };
    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        for (std::size_t i = 0; i < std::size(values); ++i)
            w.putDouble("v" + std::to_string(i), values[i]);
        w.putDouble("nan", std::nan(""));
    }
    SnapshotReader r(doc);
    for (std::size_t i = 0; i < std::size(values); ++i) {
        const double got = r.getDouble("v" + std::to_string(i));
        EXPECT_EQ(std::memcmp(&got, &values[i], sizeof got), 0)
            << "value " << i;
    }
    EXPECT_TRUE(std::isnan(r.getDouble("nan")));
    // -0.0 keeps its sign bit.
    EXPECT_TRUE(std::signbit(r.getDouble("v2")));
}

TEST(SnapshotTest, RngContinuesIdentically)
{
    Rng original(1234);
    for (int i = 0; i < 100; ++i)
        original.uniform();
    // Park a Box-Muller spare so the full state is exercised.
    original.normal();

    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        w.putRng("rng", original);
    }
    SnapshotReader r(doc);
    Rng restored(1); // different seed: state must come from the doc
    r.getRng("rng", restored);

    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(original.uniform(), restored.uniform());
        EXPECT_EQ(original.normal(), restored.normal());
        EXPECT_EQ(original.exponential(3.0), restored.exponential(3.0));
    }
}

TEST(SnapshotTest, MissingKeyAndMalformedDocumentFail)
{
    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        w.putU64("present", 1);
    }
    SnapshotReader r(doc);
    EXPECT_THROW(r.getU64("absent"), FatalError);
    EXPECT_THROW(r.getU64("present.nested"), FatalError);

    std::stringstream garbage("not a snapshot\n");
    EXPECT_THROW(SnapshotReader bad(garbage), FatalError);
}

TEST(SnapshotTest, SimulatorKernelRoundTrip)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] { ++fired; });
    sim.run();
    ASSERT_EQ(fired, 2);

    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        sim.saveState(w);
    }

    Simulator copy;
    SnapshotReader r(doc);
    copy.restoreState(r);
    EXPECT_EQ(copy.now(), sim.now());

    // Restored clock gates future scheduling exactly like the original.
    EXPECT_THROW(copy.scheduleAt(0.5, [] {}), FatalError);
    bool ran = false;
    copy.scheduleAt(3.0, [&] { ran = true; });
    copy.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(copy.now(), 3.0);
}

TEST(SnapshotTest, SimulatorRefusesRestoreWithPendingEvents)
{
    Simulator sim;
    sim.schedule(1.0, [] {});
    sim.run();
    std::stringstream doc;
    {
        SnapshotWriter w(doc);
        sim.saveState(w);
    }

    Simulator busy;
    busy.schedule(5.0, [] {});
    SnapshotReader r(doc);
    EXPECT_THROW(busy.restoreState(r), FatalError);
}

TEST(SnapshotTest, RunEpochStopsAtBoundary)
{
    Simulator sim;
    std::vector<double> fired;
    for (double t : {1.0, 2.0, 3.0, 7.0})
        sim.scheduleAt(t, [&fired, t] { fired.push_back(t); });

    const auto first = sim.runEpoch(3.0);
    EXPECT_EQ(first.end, 3.0);
    EXPECT_EQ(first.events, 3u);
    EXPECT_FALSE(first.queue_empty);
    EXPECT_EQ(sim.now(), 3.0);

    const auto second = sim.runEpoch(10.0);
    EXPECT_EQ(second.events, 1u);
    EXPECT_TRUE(second.queue_empty);
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_EQ(fired.back(), 7.0);
}
