/**
 * @file
 * Unit tests for the properties format and DhlConfig serialisation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "common/properties.hpp"
#include "dhl/config_io.hpp"

using dhl::Properties;
using namespace dhl::core;

TEST(PropertiesTest, ParsesBasicFormat)
{
    const auto props = Properties::fromString(
        "# a comment\n"
        "track_length = 500\n"
        "  lim.efficiency=0.75   # trailing comment\n"
        "\n"
        "name = DHL one\n");
    EXPECT_EQ(props.size(), 3u);
    EXPECT_TRUE(props.has("track_length"));
    EXPECT_EQ(props.get("track_length"), "500");
    EXPECT_DOUBLE_EQ(props.getDouble("lim.efficiency", 0.0), 0.75);
    EXPECT_EQ(props.get("name"), "DHL one");
    EXPECT_EQ(props.get("missing", "fallback"), "fallback");
}

TEST(PropertiesTest, TypedAccessors)
{
    auto props = Properties::fromString(
        "d = 2.5\ni = 42\nb1 = true\nb2 = off\nbad = zz\n");
    EXPECT_DOUBLE_EQ(props.getDouble("d", 0.0), 2.5);
    EXPECT_EQ(props.getInt("i", 0), 42);
    EXPECT_TRUE(props.getBool("b1", false));
    EXPECT_FALSE(props.getBool("b2", true));
    EXPECT_DOUBLE_EQ(props.getDouble("absent", 9.0), 9.0);
    EXPECT_THROW(props.getDouble("bad", 0.0), dhl::FatalError);
    EXPECT_THROW(props.getInt("bad", 0), dhl::FatalError);
    EXPECT_THROW(props.getBool("bad", false), dhl::FatalError);
}

TEST(PropertiesTest, SettersAndRoundTrip)
{
    Properties props;
    props.set("a", "x");
    props.setDouble("b", 1.5);
    props.setInt("c", 7);
    props.setBool("d", true);
    const auto round = Properties::fromString(props.toString());
    EXPECT_EQ(round.get("a"), "x");
    EXPECT_DOUBLE_EQ(round.getDouble("b", 0.0), 1.5);
    EXPECT_EQ(round.getInt("c", 0), 7);
    EXPECT_TRUE(round.getBool("d", false));
    // Insertion order preserved.
    const auto keys = round.keys();
    ASSERT_EQ(keys.size(), 4u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[3], "d");
}

TEST(PropertiesTest, MalformedLinesRejected)
{
    EXPECT_THROW(Properties::fromString("no equals sign\n"),
                 dhl::FatalError);
    EXPECT_THROW(Properties::fromString("= value\n"), dhl::FatalError);
    EXPECT_THROW(Properties::fromFile("/nonexistent/path.props"),
                 dhl::FatalError);
}

TEST(PropertiesTest, FileRoundTrip)
{
    const std::string path = "/tmp/dhl_test_props.cfg";
    {
        std::ofstream f(path);
        f << "track_length = 1000\nmax_speed = 300\n";
    }
    const auto props = Properties::fromFile(path);
    EXPECT_DOUBLE_EQ(props.getDouble("track_length", 0.0), 1000.0);
    std::remove(path.c_str());
}

TEST(ConfigIoTest, DefaultsRoundTripExactly)
{
    const DhlConfig original = defaultConfig();
    const DhlConfig loaded = loadConfig(saveConfig(original));
    EXPECT_DOUBLE_EQ(loaded.track_length, original.track_length);
    EXPECT_DOUBLE_EQ(loaded.max_speed, original.max_speed);
    EXPECT_EQ(loaded.kinematics, original.kinematics);
    EXPECT_DOUBLE_EQ(loaded.dock_time, original.dock_time);
    EXPECT_DOUBLE_EQ(loaded.lim.efficiency, original.lim.efficiency);
    EXPECT_EQ(loaded.ssds_per_cart, original.ssds_per_cart);
    EXPECT_DOUBLE_EQ(loaded.ssd.capacity, original.ssd.capacity);
    EXPECT_DOUBLE_EQ(loaded.ssd.mass, original.ssd.mass);
    EXPECT_EQ(loaded.track_mode, original.track_mode);
    EXPECT_EQ(loaded.docking_stations, original.docking_stations);
    EXPECT_DOUBLE_EQ(loaded.cartMass().value(), original.cartMass().value());
    EXPECT_NEAR(loaded.tripTime().value(), original.tripTime().value(), 1e-12);
}

TEST(ConfigIoTest, CustomConfigRoundTrips)
{
    DhlConfig cfg = makeConfig(300, 1000, 64);
    cfg.track_mode = TrackMode::DualTrack;
    cfg.docking_stations = 4;
    cfg.kinematics = dhl::physics::KinematicsMode::Trapezoid;
    cfg.lim.braking = dhl::physics::BrakingMode::Regenerative;
    cfg.lim.regen_fraction = 0.4;
    const DhlConfig loaded = loadConfig(saveConfig(cfg));
    EXPECT_DOUBLE_EQ(loaded.max_speed, 300.0);
    EXPECT_EQ(loaded.track_mode, TrackMode::DualTrack);
    EXPECT_EQ(loaded.kinematics,
              dhl::physics::KinematicsMode::Trapezoid);
    EXPECT_EQ(loaded.lim.braking,
              dhl::physics::BrakingMode::Regenerative);
    EXPECT_DOUBLE_EQ(loaded.lim.regen_fraction, 0.4);
}

TEST(ConfigIoTest, PartialOverridesKeepDefaults)
{
    const auto props = Properties::fromString(
        "max_speed = 100\nssds_per_cart = 64\n");
    const DhlConfig cfg = loadConfig(props);
    EXPECT_DOUBLE_EQ(cfg.max_speed, 100.0);
    EXPECT_EQ(cfg.ssds_per_cart, 64u);
    EXPECT_DOUBLE_EQ(cfg.track_length, 500.0); // untouched default
}

TEST(ConfigIoTest, UnknownKeysRejected)
{
    const auto props =
        Properties::fromString("max_sped = 100\n"); // typo
    EXPECT_THROW(loadConfig(props), dhl::FatalError);
}

TEST(ConfigIoTest, InvalidValuesRejectedByValidation)
{
    const auto props = Properties::fromString("track_length = -5\n");
    EXPECT_THROW(loadConfig(props), dhl::FatalError);
    const auto bad_mode =
        Properties::fromString("track_mode = sideways\n");
    EXPECT_THROW(loadConfig(bad_mode), dhl::FatalError);
    const auto bad_kin = Properties::fromString("kinematics = magic\n");
    EXPECT_THROW(loadConfig(bad_kin), dhl::FatalError);
    const auto bad_brake = Properties::fromString("lim.braking = abs\n");
    EXPECT_THROW(loadConfig(bad_brake), dhl::FatalError);
}
