/**
 * @file
 * Unit tests for the event-driven ingestion simulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "mlsim/ingest_sim.hpp"

using namespace dhl::mlsim;
using dhl::core::defaultConfig;
using dhl::network::findRoute;
namespace u = dhl::units;

namespace {

IngestConfig
smallConfig()
{
    IngestConfig cfg;
    cfg.batch_bytes = u::terabytes(1);
    cfg.step_compute_time = 1.0;
    cfg.buffer_capacity = u::terabytes(8);
    return cfg;
}

} // namespace

TEST(IngestConfigTest, Validation)
{
    EXPECT_NO_THROW(validate(smallConfig()));
    IngestConfig bad = smallConfig();
    bad.batch_bytes = 0.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = smallConfig();
    bad.buffer_capacity = bad.batch_bytes / 2.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = smallConfig();
    bad.step_compute_time = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(IngestNetworkTest, ComputeBoundWhenLinksAreFast)
{
    // 100 links deliver a 1 TB batch in 0.2 s << 1 s compute: the
    // trainer should be ~fully utilised after the first batch lands.
    IngestSim sim(smallConfig());
    const double dataset = u::terabytes(32);
    const auto r = sim.runWithNetwork(dataset, findRoute("A0"), 100.0);
    EXPECT_EQ(r.steps, 32u);
    EXPECT_DOUBLE_EQ(r.compute_busy, 32.0);
    // Only the initial fill stalls.
    EXPECT_LT(r.stall_time, 1.0);
    EXPECT_GT(r.utilisation, 0.9);
}

TEST(IngestNetworkTest, IngestBoundWhenLinkIsSlow)
{
    // One 50 GB/s link needs 20 s per 1 TB batch vs 1 s compute: the
    // epoch is ingestion-bound and utilisation collapses to ~5 %.
    IngestSim sim(smallConfig());
    const double dataset = u::terabytes(10);
    const auto r = sim.runWithNetwork(dataset, findRoute("A0"), 1.0);
    EXPECT_EQ(r.steps, 10u);
    EXPECT_NEAR(r.epoch_time, dataset / 50e9 + 1.0, 2.0);
    EXPECT_LT(r.utilisation, 0.07);
    EXPECT_GT(r.stall_time, 0.8 * r.epoch_time);
}

TEST(IngestNetworkTest, EpochNeverBeatsTheWire)
{
    IngestSim sim(smallConfig());
    const double dataset = u::terabytes(20);
    for (double links : {1.0, 4.0, 16.0}) {
        const auto r =
            sim.runWithNetwork(dataset, findRoute("A0"), links);
        EXPECT_GE(r.epoch_time, dataset / (50e9 * links) - 1e-6);
        EXPECT_GE(r.epoch_time, 20.0); // compute floor
    }
}

TEST(IngestDhlTest, ComputeBoundWhenTrainerIsSlowerThanPcie)
{
    // The cart drains at ~227 GB/s (32 x 7.1 GB/s); a trainer consuming
    // 1 TB per 5 s (200 GB/s) stays behind the drain, so after the
    // first batch lands it never starves.
    IngestConfig cfg = smallConfig();
    cfg.step_compute_time = 5.0;
    cfg.buffer_capacity = u::terabytes(512);
    IngestSim sim(cfg);
    const double dataset = u::terabytes(512); // 2 carts
    const auto r = sim.runWithDhl(dataset, defaultConfig(), false);
    EXPECT_EQ(r.steps, 512u);
    EXPECT_DOUBLE_EQ(r.compute_busy, 512.0 * 5.0);
    // Stalls: the 8.6 s first-arrival latency plus the first batch's
    // drain (~4.4 s).
    EXPECT_LT(r.stall_time, 30.0);
    EXPECT_GT(r.utilisation, 0.95);
}

TEST(IngestDhlTest, DrainBoundWhenTrainerOutrunsPcie)
{
    // A trainer consuming 1 TB/s outruns the 227 GB/s cart read: the
    // epoch is bound by draining carts back to back, and stall time
    // dominates (the data-stall phenomenon).
    IngestConfig cfg = smallConfig(); // 1 s per 1 TB batch
    cfg.buffer_capacity = u::terabytes(512);
    IngestSim sim(cfg);
    const double dataset = u::terabytes(512);
    const auto r = sim.runWithDhl(dataset, defaultConfig(), false);
    const double drain_rate = 32 * 7.1e9;
    EXPECT_NEAR(r.epoch_time, dataset / drain_rate + 8.6,
                0.05 * r.epoch_time);
    EXPECT_GT(r.stall_time, 0.7 * r.epoch_time);
    EXPECT_LT(r.utilisation, 0.3);
}

TEST(IngestDhlTest, PipeliningHelpsWhenCadenceBinds)
{
    // Make the drain fast (beefed-up SSDs and PCIe) so the launch
    // cadence is the binding resource: pipelining the returns halves
    // the cart period and nearly halves the epoch.
    IngestConfig cfg = smallConfig();
    cfg.step_compute_time = 0.001;
    cfg.buffer_capacity = u::terabytes(512);
    IngestSim sim(cfg);

    dhl::core::DhlConfig fast = defaultConfig();
    fast.ssd.seq_read_bw *= 1000.0;
    fast.pcie.lane_bandwidth *= 1000.0;
    const double dataset = u::terabytes(2048); // 8 carts
    const auto serial = sim.runWithDhl(dataset, fast, false);
    const auto piped = sim.runWithDhl(dataset, fast, true);
    EXPECT_LT(piped.epoch_time, 0.7 * serial.epoch_time);
    EXPECT_EQ(serial.steps, piped.steps);
}

TEST(IngestDhlTest, SmallBufferBackpressuresTheCart)
{
    // A slow trainer (100 s per batch) behind a small buffer forces
    // the drain to pause: producer idle time appears.
    IngestConfig cfg = smallConfig();
    cfg.step_compute_time = 100.0;
    cfg.buffer_capacity = u::terabytes(4);
    IngestSim sim(cfg);
    const double dataset = u::terabytes(16); // a slice of one cart
    const auto r = sim.runWithDhl(dataset, defaultConfig(), false);
    EXPECT_EQ(r.steps, 16u);
    EXPECT_GT(r.producer_idle, 0.0);
}

TEST(IngestTest, PartialFinalBatch)
{
    IngestSim sim(smallConfig());
    const double dataset = u::terabytes(2.5);
    const auto r = sim.runWithNetwork(dataset, findRoute("A0"), 100.0);
    EXPECT_EQ(r.steps, 3u); // 1 + 1 + 0.5 TB
    EXPECT_DOUBLE_EQ(r.compute_busy, 3.0);
}

TEST(IngestTest, RejectsBadInput)
{
    IngestSim sim(smallConfig());
    EXPECT_THROW(sim.runWithNetwork(0.0, findRoute("A0")),
                 dhl::FatalError);
    EXPECT_THROW(sim.runWithNetwork(1e12, findRoute("A0"), 0.0),
                 dhl::FatalError);
}
