/**
 * @file
 * Tests for the bench harness flag parser: known flags parse, unknown
 * `--` flags are rejected loudly (exit 2) instead of silently ignored.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bench_util.hpp"

using dhl::bench::Options;
using dhl::bench::parseArgs;

namespace {

Options
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "bench");
    return parseArgs(static_cast<int>(argv.size()),
                     const_cast<char **>(argv.data()));
}

} // namespace

TEST(BenchUtilTest, ParsesKnownFlags)
{
    const Options o = parse({"--csv", "--jobs", "4", "--seed=9",
                             "--des-shards=2", "--experiment", "e20"});
    EXPECT_TRUE(o.csv);
    EXPECT_EQ(o.jobs, 4u);
    EXPECT_EQ(o.seed, 9u);
    EXPECT_EQ(o.des_shards, 2u);
    EXPECT_EQ(o.experiment, "e20");
}

TEST(BenchUtilTest, DefaultsWhenUnflagged)
{
    const Options o = parse({});
    EXPECT_FALSE(o.csv);
    EXPECT_EQ(o.jobs, 0u);
    EXPECT_EQ(o.seed, 0u);
    EXPECT_EQ(o.des_shards, 1u);
    EXPECT_TRUE(o.experiment.empty());
}

TEST(BenchUtilDeathTest, RejectsUnknownFlag)
{
    EXPECT_EXIT(parse({"--no-such-flag"}),
                ::testing::ExitedWithCode(2),
                "unknown flag '--no-such-flag'");
    EXPECT_EXIT(parse({"--csv", "--jbos", "4"}),
                ::testing::ExitedWithCode(2), "unknown flag '--jbos'");
}

TEST(BenchUtilDeathTest, RejectsGarbageCounts)
{
    EXPECT_EXIT(parse({"--jobs", "four"}),
                ::testing::ExitedWithCode(2), "expects an integer");
    EXPECT_EXIT(parse({"--des-shards=0"}),
                ::testing::ExitedWithCode(2), "at least 1");
}
