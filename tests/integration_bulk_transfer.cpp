/**
 * @file
 * Integration: pipelined bulk transfers through the full DES stack —
 * multiple docking stations, convoy launches, direction reversals,
 * failure injection under load.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/simulation.hpp"

using namespace dhl::core;
namespace u = dhl::units;

namespace {

DhlConfig
pipelineConfig(TrackMode mode, std::size_t stations)
{
    DhlConfig cfg = defaultConfig();
    cfg.track_mode = mode;
    cfg.docking_stations = stations;
    return cfg;
}

} // namespace

TEST(PipelinedBulk, DualTrackApproachesTripTimePerCartOverD)
{
    // With D stations, a dual track and no reads, steady state is one
    // cart per station-occupancy/D.
    const auto cfg = pipelineConfig(TrackMode::DualTrack, 4);
    DhlSimulation sim(cfg);
    BulkRunOptions opts;
    opts.pipelined = true;
    const double dataset = 16.0 * cfg.cartCapacity().value();
    const auto r = sim.runBulkTransfer(dataset, opts);
    EXPECT_EQ(r.carts, 16u);
    EXPECT_EQ(r.launches, 32u);
    // Far faster than serial (16 * 17.2 s = 275 s).
    EXPECT_LT(r.total_time, 0.5 * 275.0);
    // But not faster than the physics allows: at least one full trip.
    EXPECT_GT(r.total_time, 8.6);
}

TEST(PipelinedBulk, SingleTubeSlowerThanDualTrack)
{
    const double dataset = 12.0 * defaultConfig().cartCapacity().value();
    BulkRunOptions opts;
    opts.pipelined = true;

    DhlSimulation single(pipelineConfig(TrackMode::Pipelined, 4));
    DhlSimulation dual(pipelineConfig(TrackMode::DualTrack, 4));
    const auto rs = single.runBulkTransfer(dataset, opts);
    const auto rd = dual.runBulkTransfer(dataset, opts);
    EXPECT_GT(rs.total_time, rd.total_time);
    EXPECT_EQ(rs.launches, rd.launches);
}

TEST(PipelinedBulk, MoreStationsHelpWithReads)
{
    BulkRunOptions opts;
    opts.pipelined = true;
    opts.include_read_time = true;
    const double dataset = 8.0 * defaultConfig().cartCapacity().value();

    DhlSimulation one(pipelineConfig(TrackMode::DualTrack, 1));
    DhlSimulation four(pipelineConfig(TrackMode::DualTrack, 4));
    const auto r1 = one.runBulkTransfer(dataset, opts);
    const auto r4 = four.runBulkTransfer(dataset, opts);
    EXPECT_LT(r4.total_time, r1.total_time);
    EXPECT_DOUBLE_EQ(r1.bytes_read, dataset);
    EXPECT_DOUBLE_EQ(r4.bytes_read, dataset);
}

TEST(PipelinedBulk, ExclusiveTrackBoundsPipelineGains)
{
    // With an exclusive tube and one station, issuing everything up
    // front still overlaps only the dock/undock handling with tube
    // transit: faster than strictly serial, but well short of the
    // dual-track pipeline.
    const auto cfg = pipelineConfig(TrackMode::Exclusive, 1);
    DhlSimulation pipe(cfg);
    DhlSimulation serial(cfg);
    DhlSimulation dual(pipelineConfig(TrackMode::DualTrack, 4));
    BulkRunOptions opts;
    opts.pipelined = true;
    const double dataset = 4.0 * cfg.cartCapacity().value();
    const auto rp = pipe.runBulkTransfer(dataset, opts);
    const auto rs = serial.runBulkTransfer(dataset);
    const auto rd = dual.runBulkTransfer(dataset, opts);
    EXPECT_LE(rp.total_time, rs.total_time);
    EXPECT_GT(rp.total_time, rd.total_time);
    EXPECT_EQ(rp.launches, rs.launches);
}

TEST(PipelinedBulk, FailureInjectionUnderLoad)
{
    auto prev = dhl::Logger::global().setLevel(dhl::LogLevel::Silent);
    const auto cfg = pipelineConfig(TrackMode::DualTrack, 4);
    DhlSimulation sim(cfg, 99);
    BulkRunOptions opts;
    opts.pipelined = true;
    opts.failure_per_trip = 0.02;
    const double dataset = 10.0 * cfg.cartCapacity().value();
    const auto r = sim.runBulkTransfer(dataset, opts);
    dhl::Logger::global().setLevel(prev);
    // 10 carts x 2 trips x 32 SSDs x 2 % ~ 12.8 expected.
    EXPECT_GT(r.ssd_failures, 0u);
    EXPECT_LT(r.ssd_failures, 64u);
    // Failures never lose data (RAID recovery) or stall the pipeline.
    EXPECT_EQ(r.carts, 10u);
    EXPECT_EQ(r.launches, 20u);
}

TEST(PipelinedBulk, EnergyIndependentOfPipelining)
{
    const double dataset = 10.0 * defaultConfig().cartCapacity().value();
    DhlSimulation serial(pipelineConfig(TrackMode::Exclusive, 1));
    DhlSimulation pipe(pipelineConfig(TrackMode::DualTrack, 8));
    BulkRunOptions opts;
    opts.pipelined = true;
    const auto rs = serial.runBulkTransfer(dataset);
    const auto rp = pipe.runBulkTransfer(dataset, opts);
    EXPECT_NEAR(rs.total_energy, rp.total_energy, 1e-3);
}
