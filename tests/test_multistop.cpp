/**
 * @file
 * Unit tests for the multi-stop DHL (Discussion §VI).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/multistop.hpp"
#include "physics/lim.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

MultiStopConfig
fourStops()
{
    MultiStopConfig cfg;
    cfg.stop_positions = {0.0, 200.0, 350.0, 500.0};
    return cfg;
}

} // namespace

TEST(MultiStopConfigTest, Validation)
{
    EXPECT_NO_THROW(validate(fourStops()));

    MultiStopConfig bad = fourStops();
    bad.stop_positions = {0.0};
    EXPECT_THROW(validate(bad), dhl::FatalError);

    bad = fourStops();
    bad.stop_positions = {10.0, 200.0};
    EXPECT_THROW(validate(bad), dhl::FatalError);

    bad = fourStops();
    bad.stop_positions = {0.0, 300.0, 200.0};
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(MultiStopModelTest, HopDistances)
{
    MultiStopModel m(fourStops());
    EXPECT_EQ(m.numStops(), 4u);
    EXPECT_DOUBLE_EQ(m.hopDistance(0, 1), 200.0);
    EXPECT_DOUBLE_EQ(m.hopDistance(1, 3), 300.0);
    EXPECT_DOUBLE_EQ(m.hopDistance(3, 0), 500.0); // symmetric
    EXPECT_THROW(m.hopDistance(0, 0), dhl::FatalError);
    EXPECT_THROW(m.hopDistance(0, 9), dhl::FatalError);
}

TEST(MultiStopModelTest, LongHopMatchesSingleTrackModel)
{
    // The end-to-end hop of a 0..500 m layout must equal the plain
    // 500 m DHL's trip.
    MultiStopModel m(fourStops());
    const HopMetrics h = m.hop(0, 3);
    EXPECT_DOUBLE_EQ(h.peak_speed.value(), 200.0);
    EXPECT_NEAR(h.trip_time.value(), 8.6, 1e-12);
    EXPECT_NEAR(h.energy.value(), 15040.0, 10.0);
}

TEST(MultiStopModelTest, ShortHopsClampSpeedAndEnergy)
{
    MultiStopConfig cfg = fourStops();
    cfg.stop_positions = {0.0, 10.0, 500.0};
    MultiStopModel m(cfg);
    const HopMetrics shorty = m.hop(0, 1);
    // 10 m at 1000 m/s^2 peaks at 100 m/s, not 200.
    EXPECT_NEAR(shorty.peak_speed.value(), 100.0, 1e-9);
    const HopMetrics longy = m.hop(1, 2);
    EXPECT_DOUBLE_EQ(longy.peak_speed.value(), 200.0);
    // Lower peak speed -> quadratically lower launch energy.
    EXPECT_LT(shorty.energy.value(), 0.3 * longy.energy.value());
}

TEST(MultiStopModelTest, TourSumsHops)
{
    MultiStopModel m(fourStops());
    const HopMetrics tour = m.tour({0, 1, 2, 0});
    const HopMetrics h01 = m.hop(0, 1);
    const HopMetrics h12 = m.hop(1, 2);
    const HopMetrics h20 = m.hop(2, 0);
    EXPECT_NEAR(tour.distance.value(),
                (h01.distance + h12.distance + h20.distance).value(),
                1e-9);
    EXPECT_NEAR(tour.trip_time.value(),
                (h01.trip_time + h12.trip_time + h20.trip_time).value(),
                1e-9);
    EXPECT_NEAR(tour.energy.value(),
                (h01.energy + h12.energy + h20.energy).value(), 1e-6);
    EXPECT_THROW(m.tour({0}), dhl::FatalError);
}

TEST(MultiStopTrackTest, NonOverlappingSegmentsRunConcurrently)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    // 0->1 uses segment 0; 2->3 uses segment 2: both depart now.
    const auto g1 = track.reserveTransit(0, 1);
    const auto g2 = track.reserveTransit(2, 3);
    EXPECT_DOUBLE_EQ(g1.depart_time, 0.0);
    EXPECT_DOUBLE_EQ(g2.depart_time, 0.0);
    EXPECT_EQ(track.transits(), 2u);
}

TEST(MultiStopTrackTest, OverlappingSegmentsSerialise)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    const auto g1 = track.reserveTransit(0, 2); // segments 0,1
    const auto g2 = track.reserveTransit(1, 3); // segments 1,2
    EXPECT_DOUBLE_EQ(g1.depart_time, 0.0);
    EXPECT_NEAR(g2.depart_time, g1.arrive_time, 1e-12);
}

TEST(MultiStopTrackTest, DockingBlocksPassageAtIntermediateStops)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    // A docking at stop 1 blocks through-transits crossing stop 1.
    track.blockStop(1, 3.0);
    const auto through = track.reserveTransit(0, 2);
    EXPECT_GE(through.depart_time, 3.0);
    // But a transit not crossing stop 1 is unaffected.
    const auto local = track.reserveTransit(2, 3);
    EXPECT_DOUBLE_EQ(local.depart_time, 0.0);
}

TEST(MultiStopTrackTest, EndpointDockingNeverBlocks)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    track.blockStop(0, 100.0); // endpoint: no-op
    track.blockStop(3, 100.0); // endpoint: no-op
    const auto g = track.reserveTransit(0, 3);
    EXPECT_DOUBLE_EQ(g.depart_time, 0.0);
    EXPECT_THROW(track.blockStop(9, 1.0), dhl::FatalError);
    EXPECT_THROW(track.blockStop(1, -1.0), dhl::FatalError);
}

TEST(MultiStopTrackTest, EnergyAccumulates)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    const auto g1 = track.reserveTransit(0, 3);
    const auto g2 = track.reserveTransit(3, 0);
    EXPECT_NEAR(track.totalEnergy(), g1.energy + g2.energy, 1e-9);
    EXPECT_NEAR(g1.energy, 15040.0, 10.0);
}

TEST(MultiStopTrackTest, ReverseDirectionUsesTheSameSegments)
{
    Simulator sim;
    MultiStopTrack track(sim, fourStops());
    const auto out = track.reserveTransit(0, 3);
    const auto back = track.reserveTransit(3, 0);
    // Single tube: the return cannot overlap the outbound window.
    EXPECT_GE(back.depart_time, out.arrive_time - 1e-12);
}
