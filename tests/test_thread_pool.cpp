/**
 * @file
 * Unit tests for the worker pool: coverage, ordering, the exact-serial
 * fallback, exception propagation, and nested-submit safety.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

using dhl::ThreadPool;

TEST(ThreadPoolTest, SizeResolvesJobs)
{
    ThreadPool serial(1);
    EXPECT_EQ(serial.size(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
    ThreadPool detect(0);
    EXPECT_EQ(detect.size(), ThreadPool::hardwareConcurrency());
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndOne)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    const auto squares =
        pool.parallelMap(items, [](int v) { return v * v; });
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], items[i] * items[i]);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineAndInOrder)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    const std::vector<std::size_t> expected{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(8, [](std::size_t) {
            throw std::runtime_error("first batch fails");
        }),
        std::runtime_error);
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionInSerialPoolPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     4, [](std::size_t) { throw std::logic_error("no"); }),
                 std::logic_error);
}

TEST(ThreadPoolTest, NestedSubmitIsSafe)
{
    // Every outer iteration fans out an inner parallelFor on the SAME
    // pool.  The calling thread of each inner loop participates, so
    // this must complete even though all workers are busy with outer
    // iterations.
    ThreadPool pool(3);
    constexpr std::size_t outer = 8, inner = 16;
    std::atomic<std::size_t> total{0};
    pool.parallelFor(outer, [&](std::size_t) {
        pool.parallelFor(inner,
                         [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), outer * inner);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(4,
                                  [&](std::size_t) {
                                      pool.parallelFor(
                                          4, [](std::size_t j) {
                                              if (j == 2) {
                                                  throw std::runtime_error(
                                                      "inner");
                                              }
                                          });
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ManySmallBatchesDrainCleanly)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int round = 0; round < 100; ++round)
        pool.parallelFor(7, [&](std::size_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 700);
}
