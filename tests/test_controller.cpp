/**
 * @file
 * Unit tests for the DHL controller's Open/Close/Read/Write API.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/controller.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

struct Rig
{
    explicit Rig(DhlConfig c = defaultConfig()) : cfg(c), ctl(sim, cfg) {}

    DhlConfig cfg;
    Simulator sim;
    DhlController ctl;
};

} // namespace

TEST(ControllerTest, OpenDeliversCartInOneTripTime)
{
    Rig r;
    Cart &cart = r.ctl.addCart(u::terabytes(100));
    double docked_at = -1.0;
    r.ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        docked_at = r.sim.now();
        EXPECT_EQ(c.state(), CartState::Docked);
        EXPECT_EQ(c.place(), CartPlace::Rack);
    });
    r.sim.run();
    // Undock (3) + travel (2.6) + dock (3) = 8.6 s.
    EXPECT_NEAR(docked_at, 8.6, 1e-9);
    EXPECT_EQ(r.ctl.launches(), 1u);
    EXPECT_NEAR(r.ctl.totalEnergy(), 15040.0, 10.0);
}

TEST(ControllerTest, CloseReturnsCartToLibrary)
{
    Rig r;
    Cart &cart = r.ctl.addCart();
    double stored_at = -1.0;
    r.ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        r.ctl.close(c.id(), [&](Cart &back) {
            stored_at = r.sim.now();
            EXPECT_EQ(back.state(), CartState::Stored);
            EXPECT_EQ(back.place(), CartPlace::Library);
        });
    });
    r.sim.run();
    EXPECT_NEAR(stored_at, 17.2, 1e-9); // two full trips
    EXPECT_EQ(r.ctl.launches(), 2u);
    EXPECT_EQ(cart.trips(), 2u);
}

TEST(ControllerTest, ReadServedAtDockedBandwidth)
{
    Rig r;
    Cart &cart = r.ctl.addCart(u::terabytes(10));
    double read_done = -1.0;
    r.ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        const double t0 = r.sim.now();
        r.ctl.read(c.id(), u::terabytes(10), [&, t0](double b) {
            EXPECT_DOUBLE_EQ(b, u::terabytes(10));
            read_done = r.sim.now() - t0;
        });
    });
    r.sim.run();
    EXPECT_NEAR(read_done, 10e12 / (32 * 7.1e9), 1e-6);
}

TEST(ControllerTest, WriteFillsTheCart)
{
    Rig r;
    Cart &cart = r.ctl.addCart();
    r.ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        r.ctl.write(c.id(), u::terabytes(64), nullptr);
    });
    r.sim.run();
    EXPECT_DOUBLE_EQ(cart.storedBytes(), u::terabytes(64));
}

TEST(ControllerTest, OpensQueueWhenStationsBusy)
{
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 1;
    Rig r(cfg);
    Cart &a = r.ctl.addCart();
    Cart &b = r.ctl.addCart();

    double b_docked = -1.0;
    r.ctl.open(a.id(), [&](Cart &c, DockingStation &) {
        // b's open is already queued; release the station by closing a.
        r.ctl.close(c.id(), nullptr);
    });
    r.ctl.open(b.id(), [&](Cart &, DockingStation &) {
        b_docked = r.sim.now();
    });
    EXPECT_EQ(r.ctl.queuedOpens(), 1u);
    r.sim.run();
    EXPECT_GT(b_docked, 8.6); // had to wait for a's departure
    EXPECT_EQ(r.ctl.queuedOpens(), 0u);
    EXPECT_EQ(r.ctl.launches(), 3u); // a out, a back, b out
}

TEST(ControllerTest, TwoStationsDockTwoCarts)
{
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 2;
    cfg.track_mode = TrackMode::Pipelined;
    Rig r(cfg);
    Cart &a = r.ctl.addCart();
    Cart &b = r.ctl.addCart();
    int docked = 0;
    auto cb = [&](Cart &, DockingStation &) { ++docked; };
    r.ctl.open(a.id(), cb);
    r.ctl.open(b.id(), cb);
    EXPECT_EQ(r.ctl.queuedOpens(), 0u);
    r.sim.run();
    EXPECT_EQ(docked, 2);
    // Pipelined: second cart departs one headway later.
    EXPECT_NEAR(r.sim.now(), 8.6 + cfg.headway, 1e-9);
}

TEST(ControllerTest, OpenNonStoredCartRejected)
{
    Rig r;
    Cart &cart = r.ctl.addCart();
    r.ctl.open(cart.id(), nullptr);
    EXPECT_THROW(r.ctl.open(cart.id(), nullptr), dhl::FatalError);
    r.sim.run();
    // Docked at the rack now; open is still invalid, close is valid.
    EXPECT_THROW(r.ctl.open(cart.id(), nullptr), dhl::FatalError);
}

TEST(ControllerTest, CloseRequiresDockedCart)
{
    Rig r;
    Cart &cart = r.ctl.addCart();
    EXPECT_THROW(r.ctl.close(cart.id(), nullptr), dhl::FatalError);
    EXPECT_THROW(r.ctl.read(cart.id(), 1.0, nullptr), dhl::FatalError);
    EXPECT_THROW(r.ctl.write(cart.id(), 1.0, nullptr), dhl::FatalError);
}

TEST(ControllerTest, FailureInjectionReportsAndRecovers)
{
    Rig r;
    r.ctl.setFailureProbability(1.0); // every SSD fails every trip
    Cart &cart = r.ctl.addCart(u::terabytes(10));

    // Silence the expected warnings.
    auto prev = dhl::Logger::global().setLevel(dhl::LogLevel::Silent);
    r.ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        EXPECT_EQ(c.unhealthySsds(), 0u); // already repaired on arrival
        r.ctl.close(c.id(), nullptr);
    });
    r.sim.run();
    dhl::Logger::global().setLevel(prev);

    EXPECT_EQ(r.ctl.ssdFailures(), 64u); // 32 out + 32 back
    EXPECT_DOUBLE_EQ(cart.storedBytes(), u::terabytes(10)); // data intact
}

TEST(ControllerTest, StationAccessors)
{
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 3;
    Rig r(cfg);
    EXPECT_EQ(r.ctl.numStations(), 3u);
    EXPECT_NO_THROW(r.ctl.station(2));
    EXPECT_THROW(r.ctl.station(3), dhl::FatalError);
}
