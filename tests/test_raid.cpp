/**
 * @file
 * Unit tests for the RAID protection model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "storage/raid.hpp"

using namespace dhl::storage;
namespace u = dhl::units;

namespace {

RaidModel
cartRaid(RaidLevel level, std::size_t group = 8)
{
    RaidConfig cfg;
    cfg.level = level;
    cfg.group_size = group;
    return RaidModel(referenceM2Ssd(), 32, cfg);
}

} // namespace

TEST(RaidTest, ParityCounts)
{
    EXPECT_EQ(parityCount(RaidLevel::None), 0u);
    EXPECT_EQ(parityCount(RaidLevel::Raid5), 1u);
    EXPECT_EQ(parityCount(RaidLevel::Raid6), 2u);
}

TEST(RaidTest, CapacityAccounting)
{
    const auto none = cartRaid(RaidLevel::None);
    EXPECT_DOUBLE_EQ(none.rawCapacity(), u::terabytes(256));
    EXPECT_DOUBLE_EQ(none.usableCapacity(), u::terabytes(256));
    EXPECT_DOUBLE_EQ(none.capacityOverhead(), 0.0);

    const auto r5 = cartRaid(RaidLevel::Raid5);
    EXPECT_EQ(r5.numGroups(), 4u);
    EXPECT_DOUBLE_EQ(r5.usableCapacity(), u::terabytes(256 - 4 * 8));
    EXPECT_NEAR(r5.capacityOverhead(), 1.0 / 8.0, 1e-12);

    const auto r6 = cartRaid(RaidLevel::Raid6);
    EXPECT_DOUBLE_EQ(r6.usableCapacity(), u::terabytes(256 - 8 * 8));
    EXPECT_NEAR(r6.capacityOverhead(), 2.0 / 8.0, 1e-12);
}

TEST(RaidTest, RebuildBoundByWriteBandwidth)
{
    const auto r6 = cartRaid(RaidLevel::Raid6);
    // 8 TB onto the spare at 6 GB/s.
    EXPECT_NEAR(r6.rebuildTime(), 8e12 / 6e9, 1e-6);
}

TEST(RaidTest, LossProbabilities)
{
    const double p = 0.01;

    // No parity: the group dies if any SSD fails.
    const auto none = cartRaid(RaidLevel::None, 8);
    EXPECT_NEAR(none.groupLossProbability(p),
                1.0 - std::pow(1.0 - p, 8), 1e-12);

    // RAID5 survives exactly one failure.
    const auto r5 = cartRaid(RaidLevel::Raid5, 8);
    const double survive1 = std::pow(1.0 - p, 8) +
                            8.0 * p * std::pow(1.0 - p, 7);
    EXPECT_NEAR(r5.groupLossProbability(p), 1.0 - survive1, 1e-12);

    // RAID6 adds the two-failure term.
    const auto r6 = cartRaid(RaidLevel::Raid6, 8);
    const double survive2 =
        survive1 + 28.0 * p * p * std::pow(1.0 - p, 6);
    EXPECT_NEAR(r6.groupLossProbability(p), 1.0 - survive2, 1e-12);

    // Stronger parity, lower loss.
    EXPECT_GT(none.groupLossProbability(p), r5.groupLossProbability(p));
    EXPECT_GT(r5.groupLossProbability(p), r6.groupLossProbability(p));
}

TEST(RaidTest, TripLossAcrossGroups)
{
    const auto r6 = cartRaid(RaidLevel::Raid6, 8);
    const double p = 0.01;
    const double per_group = r6.groupLossProbability(p);
    EXPECT_NEAR(r6.tripLossProbability(p),
                1.0 - std::pow(1.0 - per_group, 4), 1e-12);
    // Four groups lose more often than one.
    EXPECT_GT(r6.tripLossProbability(p), per_group);
}

TEST(RaidTest, MeanTripsToDataLoss)
{
    const auto r6 = cartRaid(RaidLevel::Raid6, 8);
    // At one-in-a-thousand per-SSD trip failure, RAID6 makes data loss
    // astronomically rare (millions of trips).
    EXPECT_GT(r6.meanTripsToDataLoss(1e-3), 1e6);
    EXPECT_TRUE(std::isinf(r6.meanTripsToDataLoss(0.0)));
    // Without parity it is merely 1/(32 * p) trips.
    const auto none = cartRaid(RaidLevel::None, 8);
    EXPECT_NEAR(none.meanTripsToDataLoss(1e-3),
                1.0 / none.tripLossProbability(1e-3), 1e-9);
    EXPECT_LT(none.meanTripsToDataLoss(1e-3), 100.0);
}

TEST(RaidTest, PaperFailureStoryQuantified)
{
    // The §III-D sentence, in numbers: at a generous 1 % per-SSD
    // per-trip failure rate, a RAID6(8) cart survives ~5000 trips
    // between data-loss events — far beyond the 228 trips of a 29 PB
    // campaign — while an unprotected cart would lose data every ~4
    // trips.
    const auto r6 = cartRaid(RaidLevel::Raid6, 8);
    const auto none = cartRaid(RaidLevel::None, 8);
    EXPECT_GT(r6.meanTripsToDataLoss(0.01), 1000.0);
    EXPECT_LT(none.meanTripsToDataLoss(0.01), 10.0);
}

TEST(RaidTest, Validation)
{
    RaidConfig bad;
    bad.group_size = 5; // does not divide 32
    EXPECT_THROW(RaidModel(referenceM2Ssd(), 32, bad), dhl::FatalError);
    bad.group_size = 2;
    bad.level = RaidLevel::Raid6; // parity == group size
    EXPECT_THROW(RaidModel(referenceM2Ssd(), 32, bad), dhl::FatalError);
    EXPECT_THROW(RaidModel(referenceM2Ssd(), 0, RaidConfig{}),
                 dhl::FatalError);
    const auto r6 = cartRaid(RaidLevel::Raid6);
    EXPECT_THROW(r6.groupLossProbability(-0.1), dhl::FatalError);
    EXPECT_THROW(r6.groupLossProbability(1.1), dhl::FatalError);
}
