/**
 * @file
 * Unit tests for the energy-proportional networking baseline — and the
 * claim the paper implicitly relies on: sleeping idle links cannot
 * close the per-byte gap to a DHL.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/energy_proportional.hpp"

using namespace dhl;
using namespace dhl::network;
namespace u = dhl::units;
namespace qty = dhl::qty;

namespace {

EnergyProportionalModel
modelFor(const char *route)
{
    return EnergyProportionalModel(findRoute(route), SleepConfig{});
}

} // namespace

TEST(SleepConfigTest, Validation)
{
    SleepConfig ok;
    EXPECT_NO_THROW(validate(ok));
    SleepConfig bad;
    bad.idle_power_fraction = 1.5;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = SleepConfig{};
    bad.wake_latency = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = SleepConfig{};
    bad.min_sleep_gap = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(EnergyProportionalTest, ActivePerByteEnergyUnchanged)
{
    // Sleeping can't lower the cost of moving a byte: J/B equals the
    // always-on route power over the line rate.
    const auto m = modelFor("B");
    EXPECT_NEAR(m.activeJoulesPerByte().value(),
                findRoute("B").power().value() /
                    u::gigabitsPerSecond(400),
                1e-15);
}

TEST(EnergyProportionalTest, SleepingSavesOnDutyCycledTraffic)
{
    // A 1 TB backup every hour: the link is busy 20 s of 3600.
    const auto m = modelFor("B");
    const qty::Bytes bytes = qty::terabytes(1.0);
    const auto slept = m.periodicDuty(bytes, qty::hours(1.0), 24);
    const auto always = m.alwaysOnDuty(bytes, qty::hours(1.0), 24);
    EXPECT_LT(slept.energy.value(), always.energy.value());
    // With 10 % idle power and ~0.6 % duty, saving approaches ~9x.
    const double saving = m.savingFactor(bytes, qty::hours(1.0), 24);
    EXPECT_GT(saving, 5.0);
    EXPECT_LT(saving, 10.0);
    EXPECT_EQ(slept.wakes, 24u);
    EXPECT_NEAR(slept.totalTime().value(), always.totalTime().value(),
                1e-6);
}

TEST(EnergyProportionalTest, HysteresisKeepsShortGapsAwake)
{
    SleepConfig cfg;
    cfg.min_sleep_gap = 10.0; // only sleep for gaps >= 10 s
    EnergyProportionalModel m(findRoute("A0"), cfg);
    // 100 GB every 3 s: gap ~1 s < hysteresis -> stays awake.
    const auto r =
        m.periodicDuty(qty::gigabytes(100.0), qty::Seconds{3.0}, 10);
    EXPECT_EQ(r.wakes, 0u);
    EXPECT_DOUBLE_EQ(r.sleep_time.value(), 0.0);
    EXPECT_GT(r.idle_time.value(), 0.0);
    // Energy equals always-on except the wake overhead accounting.
    const auto always =
        m.alwaysOnDuty(qty::gigabytes(100.0), qty::Seconds{3.0}, 10);
    EXPECT_NEAR(r.energy.value(), always.energy.value(),
                always.energy.value() * 0.01);
}

TEST(EnergyProportionalTest, ContinuousTrafficGainsNothing)
{
    // Back-to-back transfers leave no gap to sleep in.
    SleepConfig cfg;
    cfg.wake_latency = 0.0;
    EnergyProportionalModel m(findRoute("C"), cfg);
    const qty::Bytes bytes = qty::terabytes(1.0);
    const qty::Seconds period =
        bytes / qty::toBytesPerSecond(qty::gigabitsPerSecond(400.0)) +
        qty::Seconds{1e-6};
    const double saving = m.savingFactor(bytes, period, 5);
    EXPECT_NEAR(saving, 1.0, 1e-3);
}

TEST(EnergyProportionalTest, DhlPerByteAdvantageSurvivesSleeping)
{
    // Even crediting the network with perfect sleep (zero idle power),
    // the active-transfer energy for 29 PB equals the paper's Fig. 2
    // figure, so the DHL's Table VI energy reductions stand.
    SleepConfig perfect;
    perfect.idle_power_fraction = 0.0;
    for (const char *name : {"A0", "C"}) {
        EnergyProportionalModel m(findRoute(name), perfect);
        const qty::JoulesPerByte per_byte = m.activeJoulesPerByte();
        const qty::Joules net_energy = per_byte * qty::petabytes(29.0);

        const core::AnalyticalModel dhl_model(core::defaultConfig());
        const auto bulk = dhl_model.bulk(qty::petabytes(29.0));
        const double reduction = net_energy / bulk.total_energy;
        if (std::string(name) == "A0")
            EXPECT_NEAR(reduction, 4.06, 0.05);
        else
            EXPECT_NEAR(reduction, 87.3, 0.9);
    }
}

TEST(EnergyProportionalTest, RejectsOverfullDuty)
{
    const auto m = modelFor("A0");
    // 1 TB takes 20 s; a 10 s period cannot fit it.
    EXPECT_THROW(m.periodicDuty(qty::terabytes(1.0), qty::Seconds{10.0}, 2),
                 dhl::FatalError);
    EXPECT_THROW(m.alwaysOnDuty(qty::terabytes(1.0), qty::Seconds{10.0}, 2),
                 dhl::FatalError);
    EXPECT_THROW(m.periodicDuty(qty::Bytes{0.0}, qty::Seconds{10.0}, 2),
                 dhl::FatalError);
    EXPECT_THROW(m.periodicDuty(qty::gigabytes(1.0), qty::Seconds{10.0}, 0),
                 dhl::FatalError);
}
