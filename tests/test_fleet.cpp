/**
 * @file
 * Unit tests for the DHL fleet (parallel tracks) — including the
 * cross-check against mlsim's quantised closed form.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/fleet.hpp"
#include "mlsim/comm_layer.hpp"

using namespace dhl::core;
namespace u = dhl::units;

TEST(FleetTest, OneTrackMatchesSingleSimulation)
{
    const DhlConfig cfg = defaultConfig();
    const double dataset = 5.0 * cfg.cartCapacity().value();

    DhlFleet fleet(cfg, 1);
    const auto fr = fleet.runBulkTransfer(dataset);
    DhlSimulation single(cfg);
    const auto sr = single.runBulkTransfer(dataset);
    EXPECT_EQ(fr.launches, sr.launches);
    EXPECT_NEAR(fr.total_time, sr.total_time, 1e-9);
    EXPECT_NEAR(fr.total_energy, sr.total_energy, 1e-6);
}

TEST(FleetTest, TracksSplitTripsLikeTheClosedForm)
{
    // The fleet DES must land on DhlComm's quantised formula:
    // time = 2 * ceil(trips / K) * trip_time.
    const DhlConfig cfg = defaultConfig();
    const double dataset = u::petabytes(2.9); // 12 carts
    for (std::size_t k : {1u, 2u, 3u, 4u}) {
        DhlFleet fleet(cfg, k);
        const auto r = fleet.runBulkTransfer(dataset);
        dhl::mlsim::DhlComm comm(cfg);
        EXPECT_NEAR(r.total_time,
                    comm.ingestionTime(dataset, static_cast<double>(k)),
                    1e-6)
            << k << " tracks";
        EXPECT_NEAR(r.total_energy, comm.ingestionEnergy(dataset),
                    r.total_energy * 1e-9)
            << k << " tracks";
    }
}

TEST(FleetTest, MoreTracksNeverSlower)
{
    const DhlConfig cfg = defaultConfig();
    const double dataset = u::petabytes(2);
    double prev = 1e300;
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        DhlFleet fleet(cfg, k);
        const auto r = fleet.runBulkTransfer(dataset);
        EXPECT_LE(r.total_time, prev + 1e-9);
        prev = r.total_time;
    }
}

TEST(FleetTest, EnergyIndependentOfTrackCount)
{
    const DhlConfig cfg = defaultConfig();
    const double dataset = u::petabytes(2);
    DhlFleet one(cfg, 1);
    DhlFleet four(cfg, 4);
    const auto r1 = one.runBulkTransfer(dataset);
    const auto r4 = four.runBulkTransfer(dataset);
    EXPECT_NEAR(r1.total_energy, r4.total_energy,
                r1.total_energy * 1e-9);
    EXPECT_EQ(r1.launches, r4.launches);
    // But the fleet's average power scales with the parallelism.
    EXPECT_GT(r4.avg_power, 3.0 * r1.avg_power);
}

TEST(FleetTest, ReadsAccountedPerTrack)
{
    DhlConfig cfg = defaultConfig();
    DhlFleet fleet(cfg, 2);
    BulkRunOptions opts;
    opts.include_read_time = true;
    const double dataset = 4.0 * cfg.cartCapacity().value();
    const auto r = fleet.runBulkTransfer(dataset, opts);
    EXPECT_DOUBLE_EQ(r.bytes_read, dataset);
    EXPECT_EQ(r.carts, 4u);
}

TEST(FleetTest, PerTrackSeedsDeriveFromTheFleetSeed)
{
    // Track i's controller RNG is deriveSeed(seed, i) — the same
    // derivation enableFaults applies to the fault streams.  Same seed
    // must replay exactly (including stochastic SSD failures);
    // a different seed must decorrelate the failure pattern.
    const DhlConfig cfg = defaultConfig();
    BulkRunOptions opts;
    opts.failure_per_trip = 0.4;
    const double dataset = 16.0 * cfg.cartCapacity().value();
    auto run = [&](std::uint64_t seed) {
        DhlFleet f(cfg, 2, seed);
        return f.runBulkTransfer(dataset, opts).ssd_failures;
    };
    EXPECT_EQ(run(1), run(1)) << "same seed replays exactly";
    EXPECT_NE(run(1), run(1234567))
        << "the per-track streams follow the fleet seed";
}

TEST(FleetTest, Accessors)
{
    DhlFleet fleet(defaultConfig(), 3);
    EXPECT_EQ(fleet.numTracks(), 3u);
    EXPECT_NO_THROW(fleet.track(2));
    EXPECT_THROW(fleet.track(3), dhl::FatalError);
    EXPECT_THROW(DhlFleet(defaultConfig(), 0), dhl::FatalError);
    EXPECT_THROW(fleet.runBulkTransfer(0.0), dhl::FatalError);
}

TEST(FleetTest, FigureSixLeftmostPoint)
{
    // One DHL at its own average power: the Figure 6 leftmost point.
    const DhlConfig cfg = defaultConfig();
    DhlFleet fleet(cfg, 1);
    const auto r = fleet.runBulkTransfer(u::petabytes(29));
    EXPECT_NEAR(u::toKilowatts(r.avg_power), 1.75, 0.01);
    EXPECT_NEAR(r.total_time, 2 * 114 * 8.6, 1e-6);
}
