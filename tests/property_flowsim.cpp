/**
 * @file
 * Property tests for the flow simulator: conservation, fairness, and
 * work-conservation invariants under randomised workloads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "network/flowsim.hpp"

using namespace dhl::network;
using dhl::Rng;
using dhl::sim::Simulator;

class FlowSimProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FlowSimProperty, AllBytesDeliveredExactlyOnce)
{
    Rng rng(GetParam());
    Simulator sim;
    FlowSim fs(sim);
    std::vector<int> links;
    for (int i = 0; i < 4; ++i)
        links.push_back(fs.addLink(rng.uniform(50.0, 500.0)));

    double total = 0.0;
    double delivered_via_cb = 0.0;
    const int n_flows = 30;
    for (int i = 0; i < n_flows; ++i) {
        // Random contiguous path over 1-3 links.
        const auto first =
            static_cast<std::size_t>(rng.uniformInt(0, 2));
        const auto len = static_cast<std::size_t>(rng.uniformInt(1, 2));
        std::vector<int> path;
        for (std::size_t j = first;
             j <= first + len && j < links.size(); ++j) {
            path.push_back(links[j]);
        }
        const double bytes = rng.uniform(100.0, 10000.0);
        total += bytes;
        const double start_at = rng.uniform(0.0, 50.0);
        sim.schedule(start_at, [&fs, path, bytes, &delivered_via_cb] {
            fs.startFlow(path, bytes, 0.0,
                         [&delivered_via_cb](const FlowRecord &r) {
                             delivered_via_cb += r.bytes;
                         });
        });
    }
    sim.run();
    EXPECT_NEAR(fs.bytesDelivered(), total, total * 1e-9);
    EXPECT_NEAR(delivered_via_cb, total, total * 1e-9);
    EXPECT_EQ(fs.activeFlows(), 0u);
}

TEST_P(FlowSimProperty, RatesNeverExceedLinkCapacity)
{
    Rng rng(GetParam() + 1000);
    Simulator sim;
    FlowSim fs(sim);
    const int a = fs.addLink(100.0);
    const int b = fs.addLink(60.0);

    std::vector<FlowId> ids;
    for (int i = 0; i < 12; ++i) {
        std::vector<int> path =
            (i % 3 == 0) ? std::vector<int>{a}
                         : (i % 3 == 1) ? std::vector<int>{b}
                                        : std::vector<int>{a, b};
        ids.push_back(fs.startFlow(path, 1e9, 0.0, nullptr));
    }
    EXPECT_LE(fs.linkUtilisation(a), 1.0 + 1e-9);
    EXPECT_LE(fs.linkUtilisation(b), 1.0 + 1e-9);
    // Work conservation: at least one link is saturated.
    EXPECT_GT(std::max(fs.linkUtilisation(a), fs.linkUtilisation(b)),
              1.0 - 1e-9);
    for (auto id : ids)
        fs.cancelFlow(id);
}

TEST_P(FlowSimProperty, EqualFlowsGetEqualRates)
{
    Rng rng(GetParam() + 2000);
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(rng.uniform(100.0, 1000.0));
    std::vector<FlowId> ids;
    const int n = 2 + static_cast<int>(rng.uniformInt(0, 6));
    for (int i = 0; i < n; ++i)
        ids.push_back(fs.startFlow({l}, 1e9, 0.0, nullptr));
    const double expected = fs.linkCapacity(l) / n;
    for (auto id : ids)
        EXPECT_NEAR(fs.flowRate(id), expected, expected * 1e-9);
    for (auto id : ids)
        fs.cancelFlow(id);
}

TEST_P(FlowSimProperty, EnergyMatchesPowerTimesDuration)
{
    Rng rng(GetParam() + 3000);
    Simulator sim;
    FlowSim fs(sim);
    const int l = fs.addLink(100.0);
    double sum_power_time = 0.0;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
        const double bytes = rng.uniform(100.0, 5000.0);
        const double power = rng.uniform(1.0, 50.0);
        fs.startFlow({l}, bytes, power,
                     [&sum_power_time, power](const FlowRecord &r) {
                         sum_power_time += power * r.duration();
                     });
    }
    sim.run();
    EXPECT_NEAR(fs.totalEnergy(), sum_power_time,
                sum_power_time * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSimProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));
