/**
 * @file
 * Unit tests for the analytical bulk-transfer model (§II-C anchors).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "network/transfer.hpp"

using namespace dhl::network;
namespace u = dhl::units;
namespace qty = dhl::qty;
using namespace dhl::qty::literals;

TEST(TransferModelTest, SingleLink29Pb)
{
    TransferModel m(findRoute("A0"));
    const auto r = m.transfer(qty::petabytes(29.0));
    EXPECT_DOUBLE_EQ(r.time.value(), 580000.0);
    EXPECT_NEAR(u::toDays(r.time.value()), 6.71, 0.005);
    EXPECT_NEAR(u::toMegajoules(r.energy), 13.92, 0.005);
    EXPECT_DOUBLE_EQ(r.bandwidth.value(), u::gigabitsPerSecond(400));
}

TEST(TransferModelTest, ParallelLinksCutTimeNotEnergy)
{
    TransferModel m(findRoute("B"));
    const auto one = m.transfer(qty::petabytes(29.0), 1.0);
    const auto ten = m.transfer(qty::petabytes(29.0), 10.0);
    EXPECT_NEAR(ten.time.value(), one.time.value() / 10.0, 1e-6);
    // Energy is invariant under parallelisation.
    EXPECT_NEAR(ten.energy.value(), one.energy.value(), 1e-3);
    EXPECT_NEAR(ten.power.value(), 10.0 * one.power.value(), 1e-9);
}

TEST(TransferModelTest, PaperParallelisationArgument)
{
    // §II-C: hitting a 1-hour transfer of 29 PB needs a 161x speedup
    // (>64 Tbit/s).
    TransferModel m(findRoute("A0"));
    const double speedup =
        m.speedupForTargetTime(qty::petabytes(29.0), qty::hours(1.0));
    EXPECT_NEAR(speedup, 161.0, 0.5);
    const double needed_rate =
        u::toGigabitsPerSecond(speedup * m.linkRate().value());
    EXPECT_GT(needed_rate, 64000.0); // > 64 Tbit/s
}

TEST(TransferModelTest, LinksWithinPower)
{
    TransferModel m(findRoute("A0")); // 24 W per link
    EXPECT_NEAR(m.linksWithinPower(1750.0_W), 1750.0 / 24.0, 1e-9);
    EXPECT_THROW(m.linksWithinPower(0.0_W), dhl::FatalError);
}

TEST(TransferModelTest, LinksForTime)
{
    TransferModel m(findRoute("A0"));
    const double links =
        m.linksForTime(qty::petabytes(29.0), qty::hours(1.0));
    // Moving 29 PB in 1 h at 50 GB/s per link.
    EXPECT_NEAR(links, 29e15 / (50e9 * 3600.0), 1e-9);
    EXPECT_THROW(m.linksForTime(qty::Bytes{1e15}, 0.0_s),
                 dhl::FatalError);
}

TEST(TransferModelTest, EnergyScalesWithRoutePower)
{
    TransferModel a0(findRoute("A0"));
    TransferModel c(findRoute("C"));
    const qty::Bytes bytes = qty::petabytes(1.0);
    const double ratio =
        c.transfer(bytes).energy / a0.transfer(bytes).energy;
    EXPECT_NEAR(ratio, 516.2875 / 24.0, 1e-9);
}

TEST(TransferModelTest, RejectsBadInputs)
{
    TransferModel m(findRoute("A0"));
    EXPECT_THROW(m.transfer(qty::Bytes{-1.0}), dhl::FatalError);
    EXPECT_THROW(m.transfer(qty::Bytes{1e12}, 0.0), dhl::FatalError);
    PowerConstants pc;
    pc.link_rate = qty::BytesPerSecond{0.0};
    EXPECT_THROW(TransferModel(findRoute("A0"), pc), dhl::FatalError);
}
