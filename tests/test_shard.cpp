/**
 * @file
 * Tests for the sharded DES layer (sim/shard.hpp) and the determinism
 * contract of every subsystem built on it: partitionShards never splits
 * a plant domain, ShardGroup's window/lockstep primitives reproduce a
 * single global event loop, ShardMerge orders deferred effects by
 * (time, shard, log-order), and — the load-bearing property — a fleet
 * partitioned onto N shards produces results byte-identical to the
 * serial loop, with faults, planned maintenance, correlated plant
 * outages, and serving checkpoints all active.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "exp/slo.hpp"
#include "network/flowsim.hpp"
#include "ops/fleet_ops.hpp"
#include "serve/serving.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

//===========================================================================
// partitionShards
//===========================================================================

TEST(PartitionShards, DealsWholeDomainsContiguously)
{
    // 8 tracks, two-track domains, 4 shards: one domain per shard.
    const std::vector<std::size_t> map = sim::partitionShards(8, 2, 4);
    const std::vector<std::size_t> want{0, 0, 1, 1, 2, 2, 3, 3};
    EXPECT_EQ(map, want);
}

TEST(PartitionShards, CapsAtDomainCount)
{
    // 4 tracks in two-track domains cannot use more than 2 shards.
    const std::vector<std::size_t> map = sim::partitionShards(4, 2, 8);
    const std::vector<std::size_t> want{0, 0, 1, 1};
    EXPECT_EQ(map, want);
}

TEST(PartitionShards, UnevenDealStaysContiguousAndComplete)
{
    // 5 independent tracks onto 2 shards: 3 + 2, in order.
    const std::vector<std::size_t> map = sim::partitionShards(5, 1, 2);
    ASSERT_EQ(map.size(), 5u);
    std::size_t prev = 0;
    for (std::size_t s : map) {
        EXPECT_GE(s, prev); // contiguous, non-decreasing
        prev = s;
    }
    EXPECT_EQ(map.back(), 1u);
}

TEST(PartitionShards, SingleShardIsIdentity)
{
    const std::vector<std::size_t> map = sim::partitionShards(6, 2, 1);
    EXPECT_EQ(map, std::vector<std::size_t>(6, 0));
}

//===========================================================================
// ShardGroup
//===========================================================================

TEST(ShardGroup, StepMinFiresGloballyEarliestLowestShardOnTies)
{
    sim::Simulator a;
    sim::Simulator b;
    sim::ShardGroup group;
    group.attach(&a);
    group.attach(&b);

    std::vector<int> order;
    b.scheduleAt(1.0, [&order] { order.push_back(10); });
    a.scheduleAt(2.0, [&order] { order.push_back(1); }); // ties with...
    b.scheduleAt(2.0, [&order] { order.push_back(11); }); // ...this one

    EXPECT_EQ(group.nextEventTime(), 1.0);
    EXPECT_EQ(group.stepMin(), 1u); // b holds the earliest event
    group.advanceClocks(2.0);
    EXPECT_EQ(group.stepMin(), 0u); // tie at t=2 goes to shard 0
    EXPECT_EQ(group.stepMin(), 1u);
    EXPECT_EQ(group.stepMin(), sim::ShardGroup::npos);
    EXPECT_EQ(order, (std::vector<int>{10, 1, 11}));
}

TEST(ShardGroup, AdvanceToRunsEveryShardToTheBarrier)
{
    sim::Simulator a;
    sim::Simulator b;
    sim::ShardGroup group;
    group.attach(&a);
    group.attach(&b);

    int fired = 0;
    a.scheduleAt(1.0, [&fired] { ++fired; });
    a.scheduleAt(5.0, [&fired] { ++fired; }); // at the barrier: fires
    b.scheduleAt(7.0, [&fired] { ++fired; }); // beyond: pending

    group.advanceTo(5.0);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(a.now(), 5.0);
    EXPECT_EQ(b.now(), 5.0);
    EXPECT_EQ(group.now(), 5.0);
    EXPECT_EQ(group.pendingEvents(), 1u);
}

TEST(ShardGroup, PooledWindowMatchesSerialWindow)
{
    // The same two-shard schedule advanced with and without a pool
    // must fire the same events; per-shard order is the heap's either
    // way, so the counters must agree exactly.
    auto run = [](ThreadPool *pool) {
        sim::Simulator a;
        sim::Simulator b;
        sim::ShardGroup group;
        group.attach(&a);
        group.attach(&b);
        if (pool != nullptr)
            group.setPool(pool);
        int na = 0;
        int nb = 0;
        for (int i = 1; i <= 64; ++i) {
            a.scheduleAt(0.5 * i, [&na] { ++na; });
            b.scheduleAt(0.75 * i, [&nb] { ++nb; });
        }
        group.advanceTo(24.0);
        return std::make_pair(na, nb);
    };
    ThreadPool pool(4);
    EXPECT_EQ(run(nullptr), run(&pool));
}

//===========================================================================
// ShardMerge
//===========================================================================

TEST(ShardMerge, OrdersByTimeThenShardThenLogOrder)
{
    // Shard 0: records at t = 1, 3, 3;  shard 1: t = 1, 2.
    const std::vector<std::vector<double>> logs{{1.0, 3.0, 3.0},
                                                {1.0, 2.0}};
    std::vector<std::size_t> counts{3, 2};
    sim::ShardMerge merge(counts, [&logs](std::size_t s, std::size_t i) {
        return logs[s][i];
    });
    std::vector<std::pair<std::size_t, std::size_t>> got;
    for (auto [s, i] = merge.next(); s != sim::ShardGroup::npos;
         std::tie(s, i) = merge.next())
        got.emplace_back(s, i);
    const std::vector<std::pair<std::size_t, std::size_t>> want{
        {0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 2}};
    EXPECT_EQ(got, want);
}

//===========================================================================
// FleetOps: sharded dispatcher byte-identity
//===========================================================================

ops::OpsConfig
shardedOps(std::size_t des_shards)
{
    ops::OpsConfig oc;
    oc.dispatch.policy = ops::DispatchPolicy::RoundRobin;
    oc.des_shards = des_shards;
    oc.domains.enabled = true;
    oc.domains.domain_size = 2;
    oc.domains.plant_mtbf = 0.05;
    oc.domains.plant_mttr = 0.01;
    oc.domains.seed = 13;
    oc.maintenance.windows.push_back({20.0, 30.0, 0.0, 5});
    oc.faults.enabled = true;
    oc.faults.seed = 13;
    oc.faults.lim_mtbf = 0.5;
    oc.faults.lim_mttr = 0.05;
    oc.faults.track_mtbf = 1.0;
    oc.faults.track_mttr = 0.1;
    oc.faults.station_mtbf = 0.8;
    oc.faults.station_mttr = 0.02;
    oc.faults.cart_repair_per_trip = 1e-2;
    oc.faults.cart_repair_hours = 0.02;
    return oc;
}

std::string
opsDigest(const ops::OpsRunResult &r)
{
    std::ostringstream os;
    os << std::hexfloat << r.base.total_time << "|"
       << r.base.effective_bandwidth << "|" << r.base.launches << "|"
       << r.base.total_energy << "|" << r.reroutes << "|" << r.drains
       << "|" << r.deferrals << "|" << r.maintenance_windows << "|"
       << r.plant_outages << "|" << r.open_latency_mean << "|"
       << r.open_latency_p99 << "|" << r.fleet_availability;
    return os.str();
}

std::string
opsRun(std::size_t des_shards)
{
    core::DhlConfig cfg = core::defaultConfig();
    cfg.docking_stations = 2;
    ops::FleetOps ops(cfg, 8, shardedOps(des_shards), 13);
    const double dataset = 48.0 * cfg.cartCapacity().value();
    return opsDigest(ops.runBulkTransfer(dataset));
}

TEST(ShardedFleetOps, FourShardsReproduceTheSerialRun)
{
    EXPECT_EQ(opsRun(1), opsRun(4));
}

TEST(ShardedFleetOps, TwoShardsReproduceTheSerialRun)
{
    EXPECT_EQ(opsRun(1), opsRun(2));
}

//===========================================================================
// Serving: sharded fleet byte-identity under the full ops stack
//===========================================================================

/** A 64-track fleet (32 two-track plant domains) under a staged load
 *  with component faults, one per-track window, one fleet-wide window,
 *  and correlated plant outages — everything that can perturb a
 *  barrier. */
serve::ServeConfig
bigFleetConfig(std::size_t des_shards)
{
    serve::ServeConfig cfg;
    cfg.dhl = core::defaultConfig();
    cfg.dhl.docking_stations = 2;
    cfg.tracks = 64;
    cfg.seed = 21;
    cfg.epoch = 300.0;
    cfg.carts_per_track = 2;
    cfg.max_pending = 512;
    cfg.policy = ops::DispatchPolicy::RoundRobin;
    cfg.des_shards = des_shards;
    workloads::RequestClass bulk{"bulk", 3.0, u::gigabytes(192), 0.0, 0};
    workloads::RequestClass urgent{"urgent", 1.0, u::gigabytes(32), 0.0,
                                   1};
    cfg.stages = {
        workloads::StageSpec{"ramp", 300.0, 0.0, 1.5, {bulk, urgent}},
        workloads::StageSpec{"peak", 600.0, 1.5, 1.5, {bulk, urgent}},
        workloads::StageSpec{"drain", 300.0, 1.5, 0.0, {bulk, urgent}},
    };
    cfg.faults.enabled = true;
    cfg.faults.seed = 21;
    cfg.faults.lim_mtbf = 2.0;
    cfg.faults.lim_mttr = 0.1;
    cfg.faults.track_mtbf = 4.0;
    cfg.faults.track_mttr = 0.2;
    cfg.faults.station_mtbf = 3.0;
    cfg.faults.station_mttr = 0.05;
    cfg.faults.cart_repair_per_trip = 5e-3;
    cfg.faults.cart_repair_hours = 0.05;
    cfg.maintenance.windows.push_back({400.0, 150.0, 0.0, 5});
    cfg.maintenance.windows.push_back({700.0, 60.0, 0.0, -1});
    cfg.domains.enabled = true;
    cfg.domains.domain_size = 2;
    cfg.domains.plant_mtbf = 0.5;
    cfg.domains.plant_mttr = 0.05;
    cfg.domains.seed = 21;
    return cfg;
}

/** Everything the determinism contract promises: the formatted SLO
 *  table plus the fleet totals, full precision. */
std::string
servingDigest(serve::ServingSim &sim)
{
    std::ostringstream os;
    os.precision(17);
    for (const exp::StageSlo &stage : sim.sloTable())
        for (const std::string &c : exp::sloRow(stage))
            os << c << "|";
    os << sim.totalServed() << "|" << sim.totalShed() << "|"
       << sim.totalLaunches() << "|" << sim.totalEnergy() << "|"
       << sim.now() << "|" << sim.epochsCompleted();
    return os.str();
}

TEST(ShardedServing, BigFleetFourShardsReproduceTheSerialRun)
{
    serve::ServingSim serial(bigFleetConfig(1));
    serial.run();
    serve::ServingSim sharded(bigFleetConfig(4));
    sharded.run();
    EXPECT_EQ(sharded.numShards(), 4u);
    EXPECT_EQ(servingDigest(serial), servingDigest(sharded));
}

TEST(ShardedServing, PullPolicyFourShardsReproduceTheSerialRun)
{
    // LeastQueued has no static assignment at all — every dispatch is
    // a fresh pool-depth comparison at a coordinator barrier — so it
    // leans hardest on the lockstep path.
    serve::ServeConfig serial_cfg = bigFleetConfig(1);
    serial_cfg.policy = ops::DispatchPolicy::LeastQueued;
    serve::ServeConfig sharded_cfg = bigFleetConfig(4);
    sharded_cfg.policy = ops::DispatchPolicy::LeastQueued;
    serve::ServingSim serial(serial_cfg);
    serial.run();
    serve::ServingSim sharded(sharded_cfg);
    sharded.run();
    EXPECT_EQ(servingDigest(serial), servingDigest(sharded));
}

TEST(ShardedServing, RestoredShardedRunContinuesByteIdentically)
{
    // Restore-mid-run regression: a sharded run checkpointed at an
    // epoch boundary and restored into a freshly built sharded fleet
    // must finish byte-identically — digest AND re-checkpoint — to
    // one that was never interrupted.
    const serve::ServeConfig cfg = bigFleetConfig(4);

    serve::ServingSim oracle(cfg);
    oracle.run();
    std::ostringstream want_ck;
    oracle.checkpoint(want_ck);

    serve::ServingSim first(cfg);
    ASSERT_TRUE(first.stepEpoch());
    ASSERT_TRUE(first.stepEpoch());
    std::stringstream ck;
    first.checkpoint(ck);

    serve::ServingSim resumed(cfg);
    resumed.restore(ck);
    resumed.run();
    std::ostringstream got_ck;
    resumed.checkpoint(got_ck);

    EXPECT_EQ(servingDigest(oracle), servingDigest(resumed));
    EXPECT_EQ(want_ck.str(), got_ck.str());
}

//===========================================================================
// Flow-sim parallel scans
//===========================================================================

std::string
flowChurn(std::size_t workers)
{
    sim::Simulator sim;
    network::FlowSim fs(sim);
    ThreadPool pool(workers);
    if (workers > 1)
        fs.setParallel(&pool, /*grain=*/32);
    std::vector<int> links;
    for (int i = 0; i < 8; ++i)
        links.push_back(fs.addLink(u::gigabitsPerSecond(400)));
    for (int i = 0; i < 512; ++i) {
        fs.startFlow({links[i % 8], links[(i + 3) % 8]},
                     u::gigabytes(1 + i % 5), 24.0, nullptr);
    }
    sim.run();
    std::ostringstream os;
    os << std::hexfloat << fs.bytesDelivered() << "|" << sim.now();
    return os.str();
}

TEST(ParallelFlowScans, WorkerCountsAreBitIdentical)
{
    const std::string serial = flowChurn(1);
    EXPECT_EQ(serial, flowChurn(2));
    EXPECT_EQ(serial, flowChurn(4));
}

} // namespace
