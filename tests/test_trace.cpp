/**
 * @file
 * Unit tests for the trace recorder.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "sim/trace.hpp"

using namespace dhl::sim;

TEST(TraceTest, DisabledByDefault)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.record("cat", "obj", "msg");
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalEmitted(), 0u);
}

TEST(TraceTest, RecordsWithTimestamps)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    trace.record("track", "t0", "launch");
    sim.schedule(2.5, [&] { trace.record("dock", "st0", "docked"); });
    sim.run();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace.records()[0].when, 0.0);
    EXPECT_DOUBLE_EQ(trace.records()[1].when, 2.5);
    EXPECT_EQ(trace.records()[1].category, "dock");
    EXPECT_EQ(trace.records()[1].object, "st0");
    EXPECT_EQ(trace.records()[1].message, "docked");
}

TEST(TraceTest, CapacityEvictsOldest)
{
    Simulator sim;
    TraceRecorder trace(sim, 3);
    trace.enable();
    for (int i = 0; i < 5; ++i)
        trace.record("c", "o", "m" + std::to_string(i));
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.totalEmitted(), 5u);
    EXPECT_EQ(trace.dropped(), 2u);
    EXPECT_EQ(trace.records().front().message, "m2");
    EXPECT_EQ(trace.records().back().message, "m4");
}

TEST(TraceTest, FilterByCategory)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    trace.record("a", "o", "1");
    trace.record("b", "o", "2");
    trace.record("a", "o", "3");
    const auto only_a = trace.filter("a");
    ASSERT_EQ(only_a.size(), 2u);
    EXPECT_EQ(only_a[1].message, "3");
    EXPECT_TRUE(trace.filter("zzz").empty());
}

TEST(TraceTest, DisableStopsRecording)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    trace.record("a", "o", "kept");
    trace.enable(false);
    trace.record("a", "o", "lost");
    EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceTest, ClearKeepsCounters)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    trace.record("a", "o", "x");
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalEmitted(), 1u);
}

TEST(TraceTest, DumpFormats)
{
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    trace.record("api", "dhl", "open cart 3");
    std::ostringstream text;
    trace.dump(text);
    EXPECT_NE(text.str().find("[api] dhl: open cart 3"),
              std::string::npos);

    trace.record("api", "dhl", "with,comma");
    std::ostringstream csv;
    trace.dumpCsv(csv);
    EXPECT_NE(csv.str().find("time,category,object,message"),
              std::string::npos);
    EXPECT_NE(csv.str().find("\"with,comma\""), std::string::npos);
}

TEST(TraceTest, RejectsZeroCapacity)
{
    Simulator sim;
    EXPECT_THROW(TraceRecorder(sim, 0), dhl::FatalError);
}

TEST(TraceTest, SetCapacityShrinkEvictsOldest)
{
    Simulator sim;
    TraceRecorder trace(sim, 8);
    trace.enable();
    for (int i = 0; i < 6; ++i)
        trace.record("api", "dhl", "r" + std::to_string(i));
    ASSERT_EQ(trace.size(), 6u);

    // Rotation mode for soak runs: shrink to the newest three.
    trace.setCapacity(3);
    EXPECT_EQ(trace.capacity(), 3u);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.records()[0].message, "r3");
    EXPECT_EQ(trace.records()[2].message, "r5");
    // Evictions count as drops, exactly like record()-time rotation.
    EXPECT_EQ(trace.dropped(), 3u);
    EXPECT_EQ(trace.totalEmitted(), 6u);

    // Subsequent records keep rotating at the new bound.
    trace.record("api", "dhl", "r6");
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.records()[0].message, "r4");
    EXPECT_EQ(trace.dropped(), 4u);
}

TEST(TraceTest, SetCapacityGrowKeepsRecords)
{
    Simulator sim;
    TraceRecorder trace(sim, 2);
    trace.enable();
    trace.record("api", "dhl", "a");
    trace.record("api", "dhl", "b");
    trace.setCapacity(5);
    trace.record("api", "dhl", "c");
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.records()[0].message, "a");
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_THROW(trace.setCapacity(0), dhl::FatalError);
}

TEST(TraceTest, RecordsFromStringViews)
{
    // record() takes views: literals, substrings and prebuilt buffers
    // flow through without materialising intermediate std::strings.
    Simulator sim;
    TraceRecorder trace(sim);
    trace.enable();
    const std::string buffer = "category-object-message";
    const std::string_view cat(buffer.data(), 8);
    trace.record(cat, std::string_view("object"), "a literal");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.records()[0].category, "category");
    EXPECT_EQ(trace.records()[0].object, "object");
    EXPECT_EQ(trace.records()[0].message, "a literal");

    // filter() accepts views too.
    EXPECT_EQ(trace.filter(std::string_view("category")).size(), 1u);
    EXPECT_EQ(trace.filter("nope").size(), 0u);
}
