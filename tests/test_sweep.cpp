/**
 * @file
 * Unit tests for the Figure 6 power sweeps.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "mlsim/sweep.hpp"

using namespace dhl::mlsim;
using dhl::core::defaultConfig;
using dhl::network::findRoute;

TEST(SweepQuantisedTest, OnePointPerTrackCount)
{
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    const auto s = sweepQuantised(sim, 5.0 * dhl_comm.unitPower());
    EXPECT_TRUE(s.quantised);
    ASSERT_EQ(s.points.size(), 5u);
    for (std::size_t i = 0; i < s.points.size(); ++i) {
        EXPECT_DOUBLE_EQ(s.points[i].units, static_cast<double>(i + 1));
        EXPECT_NEAR(s.points[i].power,
                    (i + 1) * dhl_comm.unitPower(), 1e-6);
    }
    // Time decreases (weakly) with more tracks.
    for (std::size_t i = 1; i < s.points.size(); ++i)
        EXPECT_LE(s.points[i].iter_time, s.points[i - 1].iter_time);
}

TEST(SweepQuantisedTest, AlwaysAtLeastOnePoint)
{
    DhlComm dhl_comm(defaultConfig());
    TrainingSim sim(dlrmWorkload(), dhl_comm);
    const auto s = sweepQuantised(sim, 10.0); // below one track's power
    ASSERT_EQ(s.points.size(), 1u);
    EXPECT_DOUBLE_EQ(s.points[0].units, 1.0);
}

TEST(SweepContinuousTest, LogSpacedBudgets)
{
    OpticalComm a0(findRoute("A0"));
    TrainingSim sim(dlrmWorkload(), a0);
    const auto s = sweepContinuous(sim, 100.0, 10000.0, 5);
    EXPECT_FALSE(s.quantised);
    ASSERT_EQ(s.points.size(), 5u);
    EXPECT_NEAR(s.points.front().power, 100.0, 1e-9);
    EXPECT_NEAR(s.points.back().power, 10000.0, 1e-6);
    // Log spacing: constant ratio between consecutive budgets.
    const double ratio = s.points[1].power / s.points[0].power;
    for (std::size_t i = 2; i < s.points.size(); ++i)
        EXPECT_NEAR(s.points[i].power / s.points[i - 1].power, ratio,
                    1e-9);
    // Monotone time decrease.
    for (std::size_t i = 1; i < s.points.size(); ++i)
        EXPECT_LT(s.points[i].iter_time, s.points[i - 1].iter_time);
}

TEST(SweepContinuousTest, DhlDominatesNetworksAtEqualPower)
{
    // The Figure 6 claim: at any shared budget, the DHL's iteration
    // time sits below every network's.
    DhlComm dhl_comm(defaultConfig());
    TrainingSim dhl_sim(dlrmWorkload(), dhl_comm);
    const double budget = 4.0 * dhl_comm.unitPower();
    const double dhl_time = dhl_sim.isoPower(budget).iter_time;
    for (const char *name : {"A0", "A1", "A2", "B", "C"}) {
        OpticalComm net(findRoute(name));
        TrainingSim net_sim(dlrmWorkload(), net);
        EXPECT_GT(net_sim.isoPower(budget).iter_time, dhl_time) << name;
    }
}

TEST(SweepTest, PooledPointsAreBitIdenticalToSerial)
{
    // Points are pure functions of their index, so fanning them over a
    // pool must reproduce the serial series exactly.
    dhl::ThreadPool pool(4);

    DhlComm dhl_comm(defaultConfig());
    TrainingSim dhl_sim(dlrmWorkload(), dhl_comm);
    const auto qs = sweepQuantised(dhl_sim, 8.0 * dhl_comm.unitPower());
    const auto qp =
        sweepQuantised(dhl_sim, 8.0 * dhl_comm.unitPower(), &pool);
    ASSERT_EQ(qp.points.size(), qs.points.size());
    for (std::size_t i = 0; i < qs.points.size(); ++i) {
        EXPECT_EQ(qp.points[i].power, qs.points[i].power);
        EXPECT_EQ(qp.points[i].iter_time, qs.points[i].iter_time);
        EXPECT_EQ(qp.points[i].units, qs.points[i].units);
    }

    OpticalComm a0(findRoute("A0"));
    TrainingSim net_sim(dlrmWorkload(), a0);
    const auto cs = sweepContinuous(net_sim, 100.0, 10000.0, 9);
    const auto cp = sweepContinuous(net_sim, 100.0, 10000.0, 9, &pool);
    ASSERT_EQ(cp.points.size(), cs.points.size());
    for (std::size_t i = 0; i < cs.points.size(); ++i) {
        EXPECT_EQ(cp.points[i].power, cs.points[i].power);
        EXPECT_EQ(cp.points[i].iter_time, cs.points[i].iter_time);
    }
}

TEST(SweepTest, ScenarioFactoriesProduceCanonicalRows)
{
    // The scenario closure must return exactly sweepRows(series) and
    // fill the caller's series slot.
    SweepSeries slot;
    dhl::exp::Scenario s = dhlSweepScenario(
        dlrmWorkload(), defaultConfig(), 3.6e3, &slot);
    EXPECT_EQ(s.name, defaultConfig().label());
    dhl::exp::ScenarioContext ctx{0, 1, dhl::Rng(1)};
    const auto rows = s.run(ctx);
    EXPECT_FALSE(slot.points.empty());
    EXPECT_EQ(rows, sweepRows(slot));
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows[0].size(), sweepHeaders().size());
}

TEST(SweepTest, WrongLayerKindsRejected)
{
    DhlComm dhl_comm(defaultConfig());
    OpticalComm a0(findRoute("A0"));
    TrainingSim dhl_sim(dlrmWorkload(), dhl_comm);
    TrainingSim net_sim(dlrmWorkload(), a0);
    EXPECT_THROW(sweepContinuous(dhl_sim, 1.0, 10.0, 3), dhl::FatalError);
    EXPECT_THROW(sweepQuantised(net_sim, 100.0), dhl::FatalError);
    EXPECT_THROW(sweepContinuous(net_sim, 10.0, 5.0, 3), dhl::FatalError);
    EXPECT_THROW(sweepContinuous(net_sim, 10.0, 100.0, 1),
                 dhl::FatalError);
    EXPECT_THROW(sweepQuantised(dhl_sim, 0.0), dhl::FatalError);
}
