/**
 * @file
 * Property tests over the controller: randomised command sequences
 * must preserve system invariants — carts are never lost, stations
 * never double-book, energy matches launch counts, and every request
 * eventually completes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/controller.hpp"

using namespace dhl::core;
using dhl::Rng;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

/** Random cart shuffler: repeatedly opens, maybe reads, and closes. */
struct Churn
{
    Churn(DhlController &ctl, Rng &rng, int cycles_per_cart)
        : ctl(ctl), rng(rng), cycles_per_cart(cycles_per_cart)
    {}

    void
    run(CartId id)
    {
        ++in_flight;
        cycle(id, 0);
    }

    void
    cycle(CartId id, int done)
    {
        if (done == cycles_per_cart) {
            --in_flight;
            return;
        }
        ctl.open(id, [this, id, done](Cart &cart, DockingStation &) {
            if (rng.uniform() < 0.5 && cart.storedBytes() > 0.0) {
                const double bytes =
                    rng.uniform(0.1, 1.0) * cart.storedBytes();
                ctl.read(id, bytes, [this, id, done](double) {
                    ctl.close(id, [this, id, done](Cart &) {
                        cycle(id, done + 1);
                    });
                });
            } else {
                ctl.close(id, [this, id, done](Cart &) {
                    cycle(id, done + 1);
                });
            }
        });
    }

    DhlController &ctl;
    Rng &rng;
    int cycles_per_cart;
    int in_flight = 0;
};

struct Params
{
    std::uint64_t seed;
    TrackMode mode;
    std::size_t stations;
    std::size_t carts;
};

} // namespace

class ControllerProperty : public ::testing::TestWithParam<Params>
{};

TEST_P(ControllerProperty, ChurnPreservesInvariants)
{
    const Params p = GetParam();
    Rng rng(p.seed);

    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.track_mode = p.mode;
    cfg.docking_stations = p.stations;
    DhlController ctl(sim, cfg);

    std::vector<CartId> ids;
    for (std::size_t i = 0; i < p.carts; ++i)
        ids.push_back(ctl.addCart(u::terabytes(rng.uniform(10, 200))).id());

    const int cycles = 3;
    Churn churn(ctl, rng, cycles);
    for (CartId id : ids)
        churn.run(id);
    sim.run();

    // 1. Everything completed.
    EXPECT_EQ(churn.in_flight, 0);
    EXPECT_EQ(ctl.queuedOpens(), 0u);

    // 2. Every cart is back in the library, stored, with its data.
    for (CartId id : ids) {
        const Cart &c = ctl.library().cart(id);
        EXPECT_EQ(c.state(), CartState::Stored);
        EXPECT_EQ(c.place(), CartPlace::Library);
        EXPECT_GT(c.storedBytes(), 0.0);
        // 2 trips per cycle.
        EXPECT_EQ(c.trips(),
                  static_cast<std::uint64_t>(2 * cycles));
    }

    // 3. Launch count and energy agree exactly.
    const auto expected_launches =
        static_cast<std::uint64_t>(2 * cycles * p.carts);
    EXPECT_EQ(ctl.launches(), expected_launches);
    const double shot =
        dhl::physics::shotEnergy(cfg.cartMass(),
                                 dhl::qty::MetresPerSecond{cfg.max_speed},
                                 cfg.lim)
            .value();
    EXPECT_NEAR(ctl.totalEnergy(),
                static_cast<double>(expected_launches) * shot,
                shot * 1e-6);

    // 4. All stations are free again.
    for (std::size_t i = 0; i < ctl.numStations(); ++i)
        EXPECT_TRUE(ctl.station(i).free());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ControllerProperty,
    ::testing::Values(
        Params{1, TrackMode::Exclusive, 1, 3},
        Params{2, TrackMode::Exclusive, 2, 5},
        Params{3, TrackMode::Pipelined, 2, 6},
        Params{4, TrackMode::Pipelined, 4, 8},
        Params{5, TrackMode::DualTrack, 2, 6},
        Params{6, TrackMode::DualTrack, 4, 10},
        Params{7, TrackMode::DualTrack, 8, 16}),
    [](const ::testing::TestParamInfo<Params> &info) {
        const char *mode = info.param.mode == TrackMode::Exclusive
                               ? "excl"
                               : info.param.mode == TrackMode::Pipelined
                                     ? "pipe"
                                     : "dual";
        return "seed" + std::to_string(info.param.seed) + "_" + mode +
               "_st" + std::to_string(info.param.stations) + "_c" +
               std::to_string(info.param.carts);
    });
