/**
 * @file
 * Unit tests for the logging / error primitives.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hpp"

using namespace dhl;

namespace {

/** RAII capture of the global logger's sink and level. */
class SinkCapture
{
  public:
    SinkCapture(LogLevel level)
    {
        prev_level_ = Logger::global().setLevel(level);
        prev_sink_ = Logger::global().setSink(
            [this](LogLevel lvl, const std::string &msg) {
                entries_.push_back({lvl, msg});
            });
    }

    ~SinkCapture()
    {
        Logger::global().setSink(prev_sink_);
        Logger::global().setLevel(prev_level_);
    }

    const std::vector<std::pair<LogLevel, std::string>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<LogLevel, std::string>> entries_;
    Logger::Sink prev_sink_;
    LogLevel prev_level_;
};

} // namespace

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        fatal("bad config");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatal_if(false, "nope"));
    EXPECT_THROW(fatal_if(true, "yep"), FatalError);
    EXPECT_NO_THROW(panic_if(false, "nope"));
    EXPECT_THROW(panic_if(true, "yep"), PanicError);
}

TEST(Logging, WarnPassesLevelFilter)
{
    SinkCapture cap(LogLevel::Warn);
    warn("w1");
    inform("i1"); // filtered out at Warn level
    ASSERT_EQ(cap.entries().size(), 1u);
    EXPECT_EQ(cap.entries()[0].second, "w1");
    EXPECT_EQ(cap.entries()[0].first, LogLevel::Warn);
}

TEST(Logging, InformVisibleAtInformLevel)
{
    SinkCapture cap(LogLevel::Inform);
    warn("w");
    inform("i");
    debugLog("d"); // filtered
    ASSERT_EQ(cap.entries().size(), 2u);
    EXPECT_EQ(cap.entries()[1].second, "i");
}

TEST(Logging, SilentSuppressesEverything)
{
    SinkCapture cap(LogLevel::Silent);
    warn("w");
    inform("i");
    debugLog("d");
    EXPECT_TRUE(cap.entries().empty());
}

TEST(Logging, DebugVisibleAtDebugLevel)
{
    SinkCapture cap(LogLevel::Debug);
    debugLog("d");
    ASSERT_EQ(cap.entries().size(), 1u);
    EXPECT_EQ(cap.entries()[0].first, LogLevel::Debug);
}

TEST(Logging, SetSinkReturnsPrevious)
{
    auto prev = Logger::global().setSink(nullptr);
    // Logging with a null sink must not crash.
    Logger::global().setLevel(LogLevel::Warn);
    EXPECT_NO_THROW(warn("into the void"));
    Logger::global().setSink(prev);
}
