/**
 * @file
 * The Table VI regression: every row of the paper's design-space
 * exploration must be reproduced by the analytical model within tight
 * bands (the paper rounds its printed values).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/route.hpp"

using namespace dhl::core;
namespace u = dhl::units;
namespace qty = dhl::qty;

namespace {

/** Relative tolerance for values the paper prints rounded. */
constexpr double kRel = 0.03;

} // namespace

class TableViRegression : public ::testing::TestWithParam<TableVirow>
{};

TEST_P(TableViRegression, SingleLaunchMetrics)
{
    const TableVirow &row = GetParam();
    const AnalyticalModel model(row.config);
    const LaunchMetrics m = model.launch();

    EXPECT_NEAR(u::toKilojoules(m.energy), row.paper_energy_kj,
                row.paper_energy_kj * kRel);
    EXPECT_NEAR(m.efficiency, row.paper_efficiency_gbpj,
                row.paper_efficiency_gbpj * kRel);
    EXPECT_NEAR(m.trip_time.value(), row.paper_time_s,
                row.paper_time_s * kRel);
    EXPECT_NEAR(m.bandwidth.value() / u::terabytes(1),
                row.paper_bandwidth_tbps,
                row.paper_bandwidth_tbps * 0.04);
    EXPECT_NEAR(u::toKilowatts(m.peak_power), row.paper_peak_power_kw,
                row.paper_peak_power_kw * kRel);
}

TEST_P(TableViRegression, Moving29PbComparisons)
{
    const TableVirow &row = GetParam();
    const AnalyticalModel model(row.config);
    const qty::Bytes dataset = qty::petabytes(29.0);

    // Time speedup vs a single 400 Gbit/s link.
    const BulkMetrics bulk = model.bulk(dataset);
    const double speedup = 580000.0 / bulk.total_time.value();
    EXPECT_NEAR(speedup, row.paper_speedup, row.paper_speedup * kRel);

    // Energy reductions vs routes A0 and C.
    const auto vs_a0 =
        model.compareBulk(dataset, dhl::network::findRoute("A0"));
    const auto vs_c =
        model.compareBulk(dataset, dhl::network::findRoute("C"));
    EXPECT_NEAR(vs_a0.energy_reduction, row.paper_reduction_a0,
                row.paper_reduction_a0 * kRel);
    EXPECT_NEAR(vs_c.energy_reduction, row.paper_reduction_c,
                row.paper_reduction_c * kRel);
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableViRegression, ::testing::ValuesIn(tableViRows()),
    [](const ::testing::TestParamInfo<TableVirow> &info) {
        const auto &c = info.param.config;
        return "v" + std::to_string(static_cast<int>(c.max_speed)) + "_L" +
               std::to_string(static_cast<int>(c.track_length)) + "_n" +
               std::to_string(c.ssds_per_cart) + "_row" +
               std::to_string(info.index);
    });

TEST(AnalyticalLaunch, DefaultConfigHeadlineNumbers)
{
    const AnalyticalModel model(defaultConfig());
    const LaunchMetrics m = model.launch();
    EXPECT_NEAR(u::toKilojoules(m.energy), 15.04, 0.01);
    EXPECT_NEAR(m.trip_time.value(), 8.6, 1e-9);
    EXPECT_NEAR(m.bandwidth.value(), u::terabytes(256) / 8.6, 1.0);
    EXPECT_NEAR(u::toKilowatts(m.peak_power), 75.2, 0.1);
    EXPECT_NEAR(m.avg_power.value(), 15040.0 / 8.6, 0.5); // 1.75 kW anchor
    EXPECT_NEAR(m.efficiency, 17.0, 0.1);
}

TEST(AnalyticalLaunch, EmbodiedBandwidthBeatsFibreBy300To1200x)
{
    // Paper §V-A: 15-60 TB/s is 300x-1200x faster than one 400 Gbit/s
    // fibre (50 GB/s).
    for (const auto &row : tableViRows()) {
        const AnalyticalModel model(row.config);
        const double ratio = model.launch().bandwidth.value() / 50e9;
        EXPECT_GT(ratio, 200.0);
        EXPECT_LT(ratio, 1400.0);
    }
}

TEST(AnalyticalBulk, TripAccounting29Pb)
{
    // Paper §V-B: 29 PB needs 227 / 114 / 57 loaded trips for
    // 128 / 256 / 512 TB carts, doubled by the return journeys.
    const qty::Bytes dataset = qty::petabytes(29.0);
    struct Row { std::size_t ssds; std::uint64_t trips; };
    for (const auto &[ssds, trips] :
         {Row{16, 227}, Row{32, 114}, Row{64, 57}}) {
        const AnalyticalModel model(makeConfig(200, 500, ssds));
        const BulkMetrics m = model.bulk(dataset);
        EXPECT_EQ(m.loaded_trips, trips);
        EXPECT_EQ(m.total_trips, 2 * trips);
    }
}

TEST(AnalyticalBulk, ReturnTripsCanBeDisabled)
{
    const AnalyticalModel model(defaultConfig());
    BulkOptions opts;
    opts.count_return_trips = false;
    const BulkMetrics m = model.bulk(qty::petabytes(29.0), opts);
    EXPECT_EQ(m.total_trips, m.loaded_trips);
    const BulkMetrics def = model.bulk(qty::petabytes(29.0));
    EXPECT_NEAR(def.total_time.value(), 2.0 * m.total_time.value(), 1e-6);
    EXPECT_NEAR(def.total_energy.value(), 2.0 * m.total_energy.value(),
                1e-6);
}

TEST(AnalyticalBulk, PipelinedBeatsSerial)
{
    DhlConfig cfg = defaultConfig();
    cfg.track_mode = TrackMode::DualTrack;
    cfg.docking_stations = 4;
    const AnalyticalModel model(cfg);
    BulkOptions serial;
    BulkOptions pipe;
    pipe.pipelined = true;
    const qty::Bytes dataset = qty::petabytes(29.0);
    EXPECT_LT(model.bulk(dataset, pipe).total_time.value(),
              model.bulk(dataset, serial).total_time.value());
    // Energy is unchanged by pipelining.
    EXPECT_NEAR(model.bulk(dataset, pipe).total_energy.value(),
                model.bulk(dataset, serial).total_energy.value(), 1e-3);
}

TEST(AnalyticalBulk, ReadTimeExtendsSerialRuns)
{
    const AnalyticalModel model(defaultConfig());
    BulkOptions with_read;
    with_read.include_read_time = true;
    const qty::Bytes dataset = qty::petabytes(1.0);
    const double plain = model.bulk(dataset).total_time.value();
    const double read = model.bulk(dataset, with_read).total_time.value();
    EXPECT_GT(read, plain);
    // Each loaded cart adds one full-cart read (~256 TB at ~227 GB/s).
    const double per_cart = model.cartReadTime().value();
    const auto carts = model.bulk(dataset).loaded_trips;
    EXPECT_NEAR(read - plain, static_cast<double>(carts) * per_cart, 1.0);
}

TEST(AnalyticalEnergyBreakdown, SecondaryLossesAreNegligible)
{
    const AnalyticalModel model(defaultConfig());
    const EnergyBreakdown b = model.energyBreakdown();
    EXPECT_GT(b.accelerate.value(), 0.0);
    // Pessimistic symmetry.
    EXPECT_DOUBLE_EQ(b.accelerate.value(), b.brake.value());
    // The paper's claim: drag, stabilisation and residual-air losses
    // are negligible next to the LIM shots.
    const qty::Joules secondary = b.drag + b.stabilisation + b.aero;
    EXPECT_LT(secondary.value(), 0.02 * (b.accelerate + b.brake).value());
}

TEST(AnalyticalBulk, RejectsBadInput)
{
    const AnalyticalModel model(defaultConfig());
    EXPECT_THROW(model.bulk(qty::Bytes{0.0}), dhl::FatalError);
    EXPECT_THROW(model.bulk(qty::Bytes{-1.0}), dhl::FatalError);
}
