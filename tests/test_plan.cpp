/**
 * @file
 * Unit tests for the Monte-Carlo capacity-planning subsystem: scenario
 * sampler determinism, scalar/batched evaluator identity, the plant
 * availability derate, and the planner's winner selection and
 * jobs-invariance.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "plan/planner.hpp"

using namespace dhl;
using namespace dhl::plan;

namespace {

/** A small, fast planner setup with an attainable target. */
PlannerConfig
smallPlanner()
{
    PlannerConfig cfg;
    cfg.assumptions.dhl.docking_stations = 2;
    cfg.assumptions.target_quantile = 0.5;
    cfg.demand.users_median = 0.25e6;
    cfg.tracks_max = 3;
    cfg.carts_min = 2;
    cfg.carts_max = 6;
    cfg.scenarios = 256;
    cfg.batch = 100; // deliberately not a divisor of scenarios
    cfg.bootstrap = 50;
    cfg.seed = 11;
    return cfg;
}

} // namespace

//===========================================================================
// ScenarioSampler
//===========================================================================

TEST(ScenarioSamplerTest, StreamIsAPureFunctionOfSeedAndIndex)
{
    const ScenarioDistributions dist;
    const ScenarioSampler a(dist, 42);
    const ScenarioSampler b(dist, 42);

    // Same seed: identical scenarios, in any access order.
    const Scenario s9 = b.at(9);
    for (std::uint64_t i = 0; i < 10; ++i) {
        const Scenario x = a.at(i);
        const Scenario y = b.at(i);
        EXPECT_EQ(x.users, y.users);
        EXPECT_EQ(x.bytes_per_user_day, y.bytes_per_user_day);
        EXPECT_EQ(x.peak_factor, y.peak_factor);
        EXPECT_EQ(x.bulk_share, y.bulk_share);
        EXPECT_EQ(x.request_bytes, y.request_bytes);
    }
    EXPECT_EQ(s9.users, a.at(9).users); // out-of-order access agrees

    // Different seed: a different stream.
    const ScenarioSampler c(dist, 43);
    EXPECT_NE(a.at(0).users, c.at(0).users);
}

TEST(ScenarioSamplerTest, ChunkedFillMatchesWholeFill)
{
    const ScenarioSampler s(ScenarioDistributions{}, 7);
    ScenarioBatch whole;
    s.fill(0, 64, whole);

    ScenarioBatch chunk;
    s.fill(40, 8, chunk); // an interior window
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(chunk.users[i], whole.users[40 + i]);
        EXPECT_EQ(chunk.request_bytes[i], whole.request_bytes[40 + i]);
    }
}

TEST(ScenarioSamplerTest, SamplesRespectDistributionBounds)
{
    ScenarioDistributions dist;
    dist.peak_min = 1.5;
    dist.peak_max = 2.5;
    dist.bulk_share_min = 0.4;
    dist.bulk_share_max = 0.6;
    const ScenarioSampler s(dist, 3);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const Scenario sc = s.at(i);
        EXPECT_GT(sc.users, 0.0);
        EXPECT_GT(sc.bytes_per_user_day, 0.0);
        EXPECT_GT(sc.request_bytes, 0.0);
        EXPECT_GE(sc.peak_factor, dist.peak_min);
        EXPECT_LE(sc.peak_factor, dist.peak_max);
        EXPECT_GE(sc.bulk_share, dist.bulk_share_min);
        EXPECT_LE(sc.bulk_share, dist.bulk_share_max);
    }
}

TEST(ScenarioSamplerTest, PeakCorrelationHasTheRequestedSign)
{
    ScenarioDistributions dist;
    dist.peak_user_corr = 0.9;
    const ScenarioSampler s(dist, 5);
    double sum_uv = 0.0, sum_u = 0.0, sum_v = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const Scenario sc = s.at(static_cast<std::uint64_t>(i));
        sum_u += sc.users;
        sum_v += sc.peak_factor;
        sum_uv += sc.users * sc.peak_factor;
    }
    const double cov =
        sum_uv / n - (sum_u / n) * (sum_v / n);
    EXPECT_GT(cov, 0.0); // busier days peak harder
}

TEST(ScenarioSamplerTest, RejectsNonsenseDistributions)
{
    ScenarioDistributions dist;
    dist.peak_min = 0.5; // a peak below the mean is meaningless
    EXPECT_THROW(ScenarioSampler(dist, 1), dhl::FatalError);
    dist = ScenarioDistributions{};
    dist.bulk_share_max = 1.5;
    EXPECT_THROW(ScenarioSampler(dist, 1), dhl::FatalError);
    dist = ScenarioDistributions{};
    dist.peak_user_corr = -2.0;
    EXPECT_THROW(ScenarioSampler(dist, 1), dhl::FatalError);
}

//===========================================================================
// Batched evaluator
//===========================================================================

TEST(BatchEvalTest, BatchedIsBitIdenticalToScalar)
{
    const PlanAssumptions assume;
    const DesignPoint design{3, 6, 1};
    const ScenarioSampler sampler(ScenarioDistributions{}, 17);

    ScenarioBatch in;
    sampler.fill(0, 256, in);
    const DesignConstants c = designConstants(assume, design);
    EvalBatch out;
    evaluateBatch(c, in, assume.slo_latency, out);
    ASSERT_EQ(out.size(), 256u);

    for (std::size_t i = 0; i < in.size(); ++i) {
        const ScenarioOutcome s =
            evaluateScalar(assume, design, in.row(i));
        // Bit equality, not tolerance: both paths must inline the
        // same kernel on the same constants.
        EXPECT_EQ(s.utilisation, out.utilisation[i]);
        EXPECT_EQ(s.latency, out.latency[i]);
        EXPECT_EQ(s.energy_day, out.energy_day[i]);
        EXPECT_EQ(s.meets_slo, out.meets_slo[i] != 0);
    }
}

TEST(BatchEvalTest, PlantFactorIsAnAvailabilityDerate)
{
    const double u = 0.1;
    // No plants, no capacity; enough perfect plants, full capacity.
    EXPECT_EQ(plantCapacityFactor(2, 0, u), 0.0);
    EXPECT_EQ(plantCapacityFactor(2, 2, 0.0), 1.0);
    // Monotone in spares, capped at 1.
    const double exact_need = plantCapacityFactor(2, 2, u);
    const double one_spare = plantCapacityFactor(2, 3, u);
    const double two_spare = plantCapacityFactor(2, 4, u);
    EXPECT_LT(exact_need, one_spare);
    EXPECT_LT(one_spare, two_spare);
    EXPECT_LE(two_spare, 1.0);
    // With exactly the required plants the expectation is per-plant
    // availability.
    EXPECT_NEAR(exact_need, 1.0 - u, 1e-12);
}

TEST(BatchEvalTest, DesignConstantsFlagInfeasiblePlantCounts)
{
    PlanAssumptions a;
    a.tracks_per_plant = 2;
    const DesignConstants ok = designConstants(a, {4, 4, 2});
    EXPECT_TRUE(ok.feasible);
    const DesignConstants starved = designConstants(a, {4, 4, 1});
    EXPECT_FALSE(starved.feasible);
    EXPECT_LT(starved.plant_factor, ok.plant_factor);
    EXPECT_LT(starved.fleet_launch_rate, ok.fleet_launch_rate);
}

TEST(BatchEvalTest, SaturatedScenarioGetsInfiniteLatency)
{
    const PlanAssumptions a;
    const DesignConstants c = designConstants(a, {1, 1, 1});
    Scenario huge{};
    huge.users = 1.0e9;
    huge.bytes_per_user_day = units::gigabytes(50.0);
    huge.peak_factor = 3.0;
    huge.bulk_share = 0.1;
    huge.request_bytes = units::gigabytes(1.0);
    const ScenarioOutcome o = scenarioKernel(
        c, huge.users, huge.bytes_per_user_day, huge.peak_factor,
        huge.bulk_share, huge.request_bytes, a.slo_latency);
    EXPECT_GE(o.utilisation, 1.0);
    EXPECT_TRUE(std::isinf(o.latency));
    EXPECT_FALSE(o.meets_slo);
}

//===========================================================================
// CapacityPlanner
//===========================================================================

TEST(CapacityPlannerTest, LatticeIsDeterministicAndCoversSpares)
{
    PlannerConfig cfg = smallPlanner();
    cfg.spare_plants_max = 1;
    const CapacityPlanner planner(cfg);
    const auto points = planner.lattice();
    // tracks 1..3 x carts {2,4,6} x plants {1,2} (1 required + spare).
    ASSERT_EQ(points.size(), 3u * 3u * 2u);
    EXPECT_EQ(points.front().tracks, 1u);
    EXPECT_EQ(points.front().plants, 1u);
    EXPECT_EQ(points[1].plants, 2u); // the spare follows immediately
    EXPECT_EQ(points.back().tracks, 3u);
    EXPECT_EQ(points.back().carts_per_track, 6u);
}

TEST(CapacityPlannerTest, WinnerIsTheCheapestDesignMeetingTheTarget)
{
    const CapacityPlanner planner(smallPlanner());
    const PlanResult result = planner.plan();
    ASSERT_TRUE(result.hasWinner());

    const double winner_capex = result.winnerReport().constants.capex;
    for (const DesignReport &r : result.reports) {
        if (!r.meets_target)
            continue;
        EXPECT_LE(winner_capex, r.constants.capex);
    }
    EXPECT_TRUE(result.winnerReport().meets_target);
}

TEST(CapacityPlannerTest, BootstrapCiBracketsTheAttainment)
{
    const CapacityPlanner planner(smallPlanner());
    const PlanResult result = planner.plan();
    for (const DesignReport &r : result.reports) {
        EXPECT_GE(r.attainment, 0.0);
        EXPECT_LE(r.attainment, 1.0);
        EXPECT_LE(r.attainment_lo, r.attainment);
        EXPECT_GE(r.attainment_hi, r.attainment);
        EXPECT_GE(r.attainment_lo, 0.0);
        EXPECT_LE(r.attainment_hi, 1.0);
    }
}

TEST(CapacityPlannerTest, ParallelPlanIsByteIdenticalToSerial)
{
    PlannerConfig cfg = smallPlanner();
    cfg.jobs = 1;
    const PlanResult serial = CapacityPlanner(cfg).plan();
    cfg.jobs = 4;
    const PlanResult parallel = CapacityPlanner(cfg).plan();

    ASSERT_EQ(serial.reports.size(), parallel.reports.size());
    EXPECT_EQ(serial.winner, parallel.winner);
    for (std::size_t i = 0; i < serial.reports.size(); ++i) {
        const DesignReport &a = serial.reports[i];
        const DesignReport &b = parallel.reports[i];
        EXPECT_EQ(a.attainment, b.attainment);
        EXPECT_EQ(a.attainment_lo, b.attainment_lo);
        EXPECT_EQ(a.attainment_hi, b.attainment_hi);
        EXPECT_EQ(a.latency_p50, b.latency_p50);
        EXPECT_EQ(a.latency_slo_q, b.latency_slo_q);
        EXPECT_EQ(a.mean_utilisation, b.mean_utilisation);
        EXPECT_EQ(a.mean_energy_day, b.mean_energy_day);
        EXPECT_EQ(a.constants.capex, b.constants.capex);
    }
}

TEST(CapacityPlannerTest, MoreTracksNeverHurtAttainment)
{
    const CapacityPlanner planner(smallPlanner());
    const PlanResult result = planner.plan();
    // Fix carts=6, plants=1 and walk tracks 1..3: attainment must be
    // monotone (same scenario stream, strictly more capacity).
    double prev = -1.0;
    for (const DesignReport &r : result.reports) {
        if (r.constants.design.carts_per_track != 6 ||
            r.constants.design.plants != 1)
            continue;
        EXPECT_GE(r.attainment, prev);
        prev = r.attainment;
    }
}

TEST(CapacityPlannerTest, DesValidationReportsASustainedRate)
{
    PlannerConfig cfg = smallPlanner();
    cfg.validate_des = true;
    cfg.des_trips_per_track = 8;
    const PlanResult result = CapacityPlanner(cfg).plan();
    ASSERT_TRUE(result.hasWinner());
    ASSERT_TRUE(result.des.ran);
    EXPECT_GT(result.des.des_rate, 0.0);
    EXPECT_GT(result.des.analytical_rate, 0.0);
    // The DES serializes dock/undock at both endpoints, so it lands
    // below the closed-form bound but within a stable band.
    EXPECT_GE(result.des.ratio, 0.30);
    EXPECT_LE(result.des.ratio, 1.05);
}

TEST(CapacityPlannerTest, RejectsNonsenseConfigs)
{
    PlannerConfig cfg = smallPlanner();
    cfg.scenarios = 0;
    EXPECT_THROW(CapacityPlanner{cfg}, dhl::FatalError);
    cfg = smallPlanner();
    cfg.tracks_min = 4; // above tracks_max
    EXPECT_THROW(CapacityPlanner{cfg}, dhl::FatalError);
    cfg = smallPlanner();
    cfg.assumptions.target_quantile = 1.0;
    EXPECT_THROW(CapacityPlanner{cfg}, dhl::FatalError);
}
