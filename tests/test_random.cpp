/**
 * @file
 * Unit tests for the deterministic RNG and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/random.hpp"

using dhl::Rng;
using dhl::ZipfTable;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        if (va != b.next())
            all_equal = false;
        if (va != c.next())
            any_diff_seed = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(1);
    double mean = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mean += u;
    }
    mean /= 10000.0;
    EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, UniformRange)
{
    Rng r(2);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(5.0, 9.0);
        ASSERT_GE(v, 5.0);
        ASSERT_LT(v, 9.0);
    }
    EXPECT_THROW(r.uniform(9.0, 5.0), dhl::FatalError);
}

TEST(Rng, UniformIntInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.uniformInt(1, 6);
        ASSERT_GE(v, 1);
        ASSERT_LE(v, 6);
        saw_lo |= (v == 1);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(r.uniformInt(6, 1), dhl::FatalError);
}

TEST(Rng, ExponentialMean)
{
    Rng r(4);
    const double mean = 3.0;
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.exponential(mean);
        ASSERT_GT(v, 0.0);
        acc += v;
    }
    EXPECT_NEAR(acc / n, mean, 0.1);
    EXPECT_THROW(r.exponential(0.0), dhl::FatalError);
    EXPECT_THROW(r.exponential(-1.0), dhl::FatalError);
}

TEST(Rng, NormalMoments)
{
    Rng r(5);
    const int n = 20000;
    double acc = 0.0, acc2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        acc += v;
        acc2 += v * v;
    }
    const double mean = acc / n;
    const double var = acc2 / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LognormalPositive)
{
    Rng r(6);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng r(7);
    ZipfTable table(100, 1.0);
    EXPECT_EQ(table.size(), 100u);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[table.sample(r)];
    // Rank 0 should dominate rank 10 by roughly 11x under s=1.
    EXPECT_GT(counts[0], counts[10] * 5);
    EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(Zipf, ZeroExponentIsUniform)
{
    Rng r(8);
    ZipfTable table(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[table.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(Zipf, RejectsBadParameters)
{
    EXPECT_THROW(ZipfTable(0, 1.0), dhl::FatalError);
    EXPECT_THROW(ZipfTable(10, -0.5), dhl::FatalError);
}
