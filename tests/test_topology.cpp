/**
 * @file
 * Unit tests for the fat-tree topology builder: the canonical A2/B/C
 * route powers must emerge from host placement.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "network/route.hpp"
#include "network/topology.hpp"

using namespace dhl::network;

TEST(FatTreeTest, DefaultShapeCounts)
{
    FatTree ft;
    EXPECT_EQ(ft.numHosts(), 2 * 4 * 3);
    EXPECT_EQ(ft.numSwitches(), 8 + 2 + 1);
}

TEST(FatTreeTest, HostIndexRoundTrip)
{
    FatTree ft;
    for (int i = 0; i < ft.numHosts(); ++i) {
        const HostAddress a = ft.hostAddress(i);
        EXPECT_EQ(ft.hostIndex(a), i);
    }
    EXPECT_THROW(ft.hostIndex({9, 0, 0}), dhl::FatalError);
    EXPECT_THROW(ft.hostAddress(-1), dhl::FatalError);
    EXPECT_THROW(ft.hostAddress(ft.numHosts()), dhl::FatalError);
}

TEST(FatTreeTest, SameRackIsOneSwitch)
{
    FatTree ft;
    const auto p = ft.path({0, 0, 0}, {0, 0, 1});
    EXPECT_EQ(p.switch_nodes.size(), 1u);
    // Single-switch transit = route A2's power.
    EXPECT_NEAR(p.route.power().value(), findRoute("A2").power().value(),
                1e-9);
}

TEST(FatTreeTest, SameAisleIsThreeSwitches)
{
    FatTree ft;
    const auto p = ft.path({0, 0, 0}, {0, 2, 1});
    EXPECT_EQ(p.switch_nodes.size(), 3u);
    EXPECT_NEAR(p.route.power().value(), findRoute("B").power().value(),
                1e-9);
}

TEST(FatTreeTest, CrossAisleIsFiveSwitches)
{
    FatTree ft;
    const auto p = ft.path({0, 0, 0}, {1, 3, 2});
    EXPECT_EQ(p.switch_nodes.size(), 5u);
    EXPECT_NEAR(p.route.power().value(), findRoute("C").power().value(),
                1e-9);
}

TEST(FatTreeTest, HopSwitchesHelper)
{
    FatTree ft;
    EXPECT_EQ(ft.hopSwitches({0, 0, 0}, {0, 0, 1}), 1);
    EXPECT_EQ(ft.hopSwitches({0, 0, 0}, {0, 1, 0}), 3);
    EXPECT_EQ(ft.hopSwitches({0, 0, 0}, {1, 0, 0}), 5);
}

TEST(FatTreeTest, PathIsSymmetricInPower)
{
    FatTree ft;
    const auto ab = ft.path({0, 0, 0}, {1, 2, 1});
    const auto ba = ft.path({1, 2, 1}, {0, 0, 0});
    EXPECT_NEAR(ab.route.power().value(), ba.route.power().value(), 1e-9);
    EXPECT_EQ(ab.switch_nodes.size(), ba.switch_nodes.size());
}

TEST(FatTreeTest, SameHostRejected)
{
    FatTree ft;
    EXPECT_THROW(ft.path({0, 0, 0}, {0, 0, 0}), dhl::FatalError);
}

TEST(FatTreeTest, BiggerFabricStillRoutes)
{
    FatTreeConfig cfg;
    cfg.aisles = 4;
    cfg.racks_per_aisle = 8;
    cfg.hosts_per_rack = 4;
    cfg.aggs_per_aisle = 2;
    cfg.cores = 2;
    FatTree ft(cfg);
    EXPECT_EQ(ft.numHosts(), 4 * 8 * 4);
    // Cross-aisle stays 5 switches (ToR-agg-core-agg-ToR) regardless of
    // redundancy.
    EXPECT_EQ(ft.hopSwitches({0, 0, 0}, {3, 7, 3}), 5);
    EXPECT_EQ(ft.hopSwitches({2, 1, 0}, {2, 1, 3}), 1);
}

TEST(FatTreeTest, RejectsDegenerateShapes)
{
    FatTreeConfig cfg;
    cfg.aisles = 0;
    EXPECT_THROW(FatTree{cfg}, dhl::FatalError);
    cfg = FatTreeConfig{};
    cfg.hosts_per_rack = 0;
    EXPECT_THROW(FatTree{cfg}, dhl::FatalError);
    cfg = FatTreeConfig{};
    cfg.cores = 0;
    EXPECT_THROW(FatTree{cfg}, dhl::FatalError);
}
