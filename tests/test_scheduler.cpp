/**
 * @file
 * Unit tests for the Open-request scheduling policies, standalone and
 * wired into the controller.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/controller.hpp"
#include "dhl/scheduler.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
namespace u = dhl::units;

namespace {

QueuedOpen
req(CartId id, std::uint64_t seq, int priority = 0,
    double deadline = std::numeric_limits<double>::infinity())
{
    QueuedOpen q{};
    q.id = id;
    q.seq = seq;
    q.meta.priority = priority;
    q.meta.deadline = deadline;
    return q;
}

} // namespace

TEST(FifoSchedulerTest, ArrivalOrder)
{
    FifoScheduler s;
    EXPECT_EQ(s.name(), "fifo");
    EXPECT_TRUE(s.empty());
    s.push(req(10, 0));
    s.push(req(20, 1));
    s.push(req(30, 2));
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.pop().id, 10u);
    EXPECT_EQ(s.pop().id, 20u);
    EXPECT_EQ(s.pop().id, 30u);
    EXPECT_TRUE(s.empty());
}

TEST(PrioritySchedulerTest, HighestFirstFifoWithin)
{
    PriorityScheduler s;
    s.push(req(1, 0, 0));
    s.push(req(2, 1, 5));
    s.push(req(3, 2, 5));
    s.push(req(4, 3, 1));
    EXPECT_EQ(s.pop().id, 2u); // priority 5, earliest seq
    EXPECT_EQ(s.pop().id, 3u); // priority 5
    EXPECT_EQ(s.pop().id, 4u); // priority 1
    EXPECT_EQ(s.pop().id, 1u); // priority 0
}

TEST(DeadlineSchedulerTest, EarliestDeadlineFirst)
{
    DeadlineScheduler s;
    EXPECT_EQ(s.name(), "edf");
    s.push(req(1, 0, 0, 100.0));
    s.push(req(2, 1, 0, 10.0));
    s.push(req(3, 2, 0, 10.0));
    s.push(req(4, 3)); // no deadline -> last
    EXPECT_EQ(s.pop().id, 2u);
    EXPECT_EQ(s.pop().id, 3u);
    EXPECT_EQ(s.pop().id, 1u);
    EXPECT_EQ(s.pop().id, 4u);
}

TEST(SchedulerTest, DrainReturnsArrivalOrderRegardlessOfPolicy)
{
    // The ops-layer dispatcher drains a down track's queue and
    // re-routes the work; arrival order keeps the re-route fair even
    // when the policy would have popped in a different order.
    FifoScheduler f;
    PriorityScheduler p;
    DeadlineScheduler d;
    for (OpenScheduler *s :
         std::initializer_list<OpenScheduler *>{&f, &p, &d}) {
        s->push(req(1, 2, 0, 100.0));
        s->push(req(2, 0, 5, 10.0));
        s->push(req(3, 1, 1, 50.0));
        const auto all = s->drain();
        ASSERT_EQ(all.size(), 3u);
        EXPECT_EQ(all[0].id, 2u) << s->name(); // seq 0
        EXPECT_EQ(all[1].id, 3u) << s->name(); // seq 1
        EXPECT_EQ(all[2].id, 1u) << s->name(); // seq 2
        EXPECT_TRUE(s->empty()) << s->name();
        EXPECT_TRUE(s->drain().empty()) << s->name();
    }
}

TEST(SchedulerTest, PopFromEmptyPanics)
{
    FifoScheduler f;
    PriorityScheduler p;
    DeadlineScheduler d;
    EXPECT_THROW(f.pop(), dhl::PanicError);
    EXPECT_THROW(p.pop(), dhl::PanicError);
    EXPECT_THROW(d.pop(), dhl::PanicError);
}

TEST(ControllerScheduling, PriorityJumpsTheQueue)
{
    // One station; three carts; the high-priority open issued last must
    // dock second (right after the station first frees).
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 1;
    DhlController ctl(sim, cfg);
    ctl.setScheduler(makePriorityScheduler());
    EXPECT_EQ(ctl.schedulerName(), "priority");

    Cart &a = ctl.addCart();
    Cart &b = ctl.addCart();
    Cart &c = ctl.addCart();

    std::vector<CartId> dock_order;
    auto record = [&](Cart &cart, DockingStation &) {
        dock_order.push_back(cart.id());
        ctl.close(cart.id(), nullptr);
    };
    ctl.open(a.id(), record);                       // grabs the station
    ctl.open(b.id(), RequestMeta{0, 1e18}, record); // queued, low prio
    ctl.open(c.id(), RequestMeta{9, 1e18}, record); // queued, high prio
    sim.run();

    ASSERT_EQ(dock_order.size(), 3u);
    EXPECT_EQ(dock_order[0], a.id());
    EXPECT_EQ(dock_order[1], c.id()); // jumped ahead of b
    EXPECT_EQ(dock_order[2], b.id());
}

TEST(ControllerScheduling, EdfOrdersByDeadline)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 1;
    DhlController ctl(sim, cfg);
    ctl.setScheduler(makeDeadlineScheduler());

    Cart &a = ctl.addCart();
    Cart &b = ctl.addCart();
    Cart &c = ctl.addCart();

    std::vector<CartId> dock_order;
    auto record = [&](Cart &cart, DockingStation &) {
        dock_order.push_back(cart.id());
        ctl.close(cart.id(), nullptr);
    };
    ctl.open(a.id(), record);
    ctl.open(b.id(), RequestMeta{0, 500.0}, record);
    ctl.open(c.id(), RequestMeta{0, 50.0}, record);
    sim.run();

    ASSERT_EQ(dock_order.size(), 3u);
    EXPECT_EQ(dock_order[1], c.id()); // tighter deadline first
    EXPECT_EQ(dock_order[2], b.id());
}

TEST(ControllerScheduling, SwapWhileQueuedRejected)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 1;
    DhlController ctl(sim, cfg);
    Cart &a = ctl.addCart();
    Cart &b = ctl.addCart();
    ctl.open(a.id(), nullptr);
    ctl.open(b.id(), nullptr); // queued
    EXPECT_THROW(ctl.setScheduler(makePriorityScheduler()),
                 dhl::FatalError);
    EXPECT_THROW(ctl.setScheduler(nullptr), dhl::FatalError);
    sim.run();
}

TEST(ControllerScheduling, DefaultIsFifo)
{
    Simulator sim;
    DhlController ctl(sim, defaultConfig());
    EXPECT_EQ(ctl.schedulerName(), "fifo");
}
