/**
 * @file
 * Unit tests for the controller's trace emission.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/controller.hpp"
#include "sim/trace.hpp"

using namespace dhl::core;
using dhl::sim::Simulator;
using dhl::sim::TraceRecorder;
namespace u = dhl::units;

TEST(ControllerTraceTest, OpenCloseCycleEmitsApiAndTrackRecords)
{
    Simulator sim;
    DhlController ctl(sim, defaultConfig());
    TraceRecorder trace(sim);
    trace.enable();
    ctl.attachTrace(&trace);

    Cart &cart = ctl.addCart(u::terabytes(10));
    ctl.open(cart.id(), [&](Cart &c, DockingStation &) {
        ctl.close(c.id(), nullptr);
    });
    sim.run();

    const auto api = trace.filter("api");
    ASSERT_EQ(api.size(), 2u);
    EXPECT_EQ(api[0].message, "open cart 0");
    EXPECT_EQ(api[1].message, "close cart 0");

    const auto track = trace.filter("track");
    ASSERT_EQ(track.size(), 2u);
    EXPECT_EQ(track[0].message, "cart 0 outbound");
    EXPECT_EQ(track[1].message, "cart 0 inbound");
    // Launch timestamps: outbound departs at 3 s (after undock), the
    // return at 11.6 + 3 = 14.6... the inbound departure is at 11.6 s
    // (undock done) since the tube is free.
    EXPECT_DOUBLE_EQ(track[0].when, 3.0);
    EXPECT_DOUBLE_EQ(track[1].when, 11.6);
}

TEST(ControllerTraceTest, QueuedOpensAreMarked)
{
    Simulator sim;
    DhlConfig cfg = defaultConfig();
    cfg.docking_stations = 1;
    DhlController ctl(sim, cfg);
    TraceRecorder trace(sim);
    trace.enable();
    ctl.attachTrace(&trace);

    Cart &a = ctl.addCart();
    Cart &b = ctl.addCart();
    ctl.open(a.id(), [&](Cart &c, DockingStation &) {
        ctl.close(c.id(), nullptr);
    });
    ctl.open(b.id(), nullptr);
    sim.run();

    bool saw_queued = false;
    for (const auto &r : trace.filter("api"))
        saw_queued |= r.message == "open cart 1 queued";
    EXPECT_TRUE(saw_queued);
}

TEST(ControllerTraceTest, FailureRecords)
{
    auto prev = dhl::Logger::global().setLevel(dhl::LogLevel::Silent);
    Simulator sim;
    DhlController ctl(sim, defaultConfig());
    ctl.setFailureProbability(1.0);
    TraceRecorder trace(sim);
    trace.enable();
    ctl.attachTrace(&trace);

    Cart &cart = ctl.addCart(u::terabytes(1));
    ctl.open(cart.id(), nullptr);
    sim.run();
    dhl::Logger::global().setLevel(prev);

    const auto failures = trace.filter("failure");
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].message.find("lost 32 SSD(s)"),
              std::string::npos);
}

TEST(ControllerTraceTest, DetachedControllerEmitsNothing)
{
    Simulator sim;
    DhlController ctl(sim, defaultConfig());
    TraceRecorder trace(sim);
    trace.enable();
    ctl.attachTrace(&trace);
    ctl.attachTrace(nullptr); // detach again

    Cart &cart = ctl.addCart();
    ctl.open(cart.id(), nullptr);
    sim.run();
    EXPECT_EQ(trace.size(), 0u);
}
