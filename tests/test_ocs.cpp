/**
 * @file
 * Unit tests for the optical circuit switching baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/ocs.hpp"

using namespace dhl;
using namespace dhl::network;
namespace u = dhl::units;

TEST(OcsConfigTest, Validation)
{
    OcsConfig ok;
    EXPECT_NO_THROW(validate(ok));
    OcsConfig bad;
    bad.reconfiguration_latency = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = OcsConfig{};
    bad.port_power = -0.1;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(OcsTest, CircuitPowerNearA0)
{
    OcsModel ocs;
    // 2 x 12 W transceivers + 2 x 0.5 W crossbar ports.
    EXPECT_NEAR(ocs.circuitPower(), 25.0, 1e-12);
    // A passive crossbar degenerates to exactly A0.
    OcsConfig passive;
    passive.port_power = 0.0;
    EXPECT_NEAR(OcsModel(passive).circuitPower(),
                findRoute("A0").power(), 1e-12);
}

TEST(OcsTest, TransferIncludesReconfiguration)
{
    OcsModel ocs;
    const auto r = ocs.transfer(u::terabytes(1));
    EXPECT_NEAR(r.time, 0.010 + 1e12 / 50e9, 1e-9);
    EXPECT_NEAR(r.energy, r.power * r.time, 1e-9);
}

TEST(OcsTest, BigSavingsOverDeepRoutes)
{
    // OCS collapses route C's five electrical switch transits; saving
    // approaches C/A0-ish power ratios (~20x).
    OcsModel ocs;
    const double saving =
        ocs.savingVsRoute(findRoute("C"), u::petabytes(1));
    EXPECT_GT(saving, 15.0);
    EXPECT_LT(saving, 25.0);
    // Against A0 itself there is (almost) nothing to save.
    EXPECT_NEAR(ocs.savingVsRoute(findRoute("A0"), u::petabytes(1)),
                24.0 / 25.0, 0.01);
}

TEST(OcsTest, DhlStillWinsAgainstOcs)
{
    // The strongest optical baseline: a passive circuit (A0 power).
    // The default DHL still moves 29 PB with ~4x less energy and
    // ~300x less time (Table VI's A0 column is precisely this bound).
    OcsConfig passive;
    passive.port_power = 0.0;
    passive.reconfiguration_latency = 0.0;
    OcsModel ocs(passive);
    const double bytes = u::petabytes(29);
    const auto circuit = ocs.transfer(bytes);

    const core::AnalyticalModel dhl_model(core::defaultConfig());
    const auto bulk = dhl_model.bulk(bytes);
    EXPECT_GT(circuit.energy / bulk.total_energy, 4.0);
    EXPECT_GT(circuit.time / bulk.total_time, 290.0);
}

TEST(OcsTest, ParallelCircuits)
{
    OcsModel ocs;
    const auto one = ocs.transfer(u::petabytes(1), 1.0);
    const auto ten = ocs.transfer(u::petabytes(1), 10.0);
    EXPECT_LT(ten.time, one.time);
    EXPECT_NEAR(ten.power, 10.0 * one.power, 1e-9);
    EXPECT_THROW(ocs.transfer(1e12, 0.0), dhl::FatalError);
    EXPECT_THROW(ocs.transfer(-1.0), dhl::FatalError);
}
