/**
 * @file
 * Unit tests for the optical circuit switching baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/ocs.hpp"

using namespace dhl;
using namespace dhl::network;
namespace u = dhl::units;
namespace qty = dhl::qty;

TEST(OcsConfigTest, Validation)
{
    OcsConfig ok;
    EXPECT_NO_THROW(validate(ok));
    OcsConfig bad;
    bad.reconfiguration_latency = -1.0;
    EXPECT_THROW(validate(bad), dhl::FatalError);
    bad = OcsConfig{};
    bad.port_power = -0.1;
    EXPECT_THROW(validate(bad), dhl::FatalError);
}

TEST(OcsTest, CircuitPowerNearA0)
{
    OcsModel ocs;
    // 2 x 12 W transceivers + 2 x 0.5 W crossbar ports.
    EXPECT_NEAR(ocs.circuitPower().value(), 25.0, 1e-12);
    // A passive crossbar degenerates to exactly A0.
    OcsConfig passive;
    passive.port_power = 0.0;
    EXPECT_NEAR(OcsModel(passive).circuitPower().value(),
                findRoute("A0").power().value(), 1e-12);
}

TEST(OcsTest, TransferIncludesReconfiguration)
{
    OcsModel ocs;
    const auto r = ocs.transfer(qty::terabytes(1.0));
    EXPECT_NEAR(r.time.value(), 0.010 + 1e12 / 50e9, 1e-9);
    EXPECT_NEAR(r.energy.value(), (r.power * r.time).value(), 1e-9);
}

TEST(OcsTest, BigSavingsOverDeepRoutes)
{
    // OCS collapses route C's five electrical switch transits; saving
    // approaches C/A0-ish power ratios (~20x).
    OcsModel ocs;
    const double saving =
        ocs.savingVsRoute(findRoute("C"), qty::petabytes(1.0));
    EXPECT_GT(saving, 15.0);
    EXPECT_LT(saving, 25.0);
    // Against A0 itself there is (almost) nothing to save.
    EXPECT_NEAR(ocs.savingVsRoute(findRoute("A0"), qty::petabytes(1.0)),
                24.0 / 25.0, 0.01);
}

TEST(OcsTest, DhlStillWinsAgainstOcs)
{
    // The strongest optical baseline: a passive circuit (A0 power).
    // The default DHL still moves 29 PB with ~4x less energy and
    // ~300x less time (Table VI's A0 column is precisely this bound).
    OcsConfig passive;
    passive.port_power = 0.0;
    passive.reconfiguration_latency = 0.0;
    OcsModel ocs(passive);
    const qty::Bytes bytes = qty::petabytes(29.0);
    const auto circuit = ocs.transfer(bytes);

    const core::AnalyticalModel dhl_model(core::defaultConfig());
    const auto bulk = dhl_model.bulk(bytes);
    EXPECT_GT(circuit.energy / bulk.total_energy, 4.0);
    EXPECT_GT(circuit.time / bulk.total_time, 290.0);
}

TEST(OcsTest, ParallelCircuits)
{
    OcsModel ocs;
    const auto one = ocs.transfer(qty::petabytes(1.0), 1.0);
    const auto ten = ocs.transfer(qty::petabytes(1.0), 10.0);
    EXPECT_LT(ten.time.value(), one.time.value());
    EXPECT_NEAR(ten.power.value(), 10.0 * one.power.value(), 1e-9);
    EXPECT_THROW(ocs.transfer(qty::terabytes(1.0), 0.0), dhl::FatalError);
    EXPECT_THROW(ocs.transfer(qty::Bytes{-1.0}), dhl::FatalError);
}
