/**
 * @file
 * Property tests for the cart cache: capacity and accounting
 * invariants under randomised dataset traffic.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/placement.hpp"

using namespace dhl::core;
using dhl::Rng;
namespace u = dhl::units;

class PlacementProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PlacementProperty, CapacityNeverExceeded)
{
    Rng rng(GetParam());
    PlacementConfig cfg;
    cfg.cache_carts = static_cast<std::size_t>(rng.uniformInt(4, 32));
    CartCache cache(defaultConfig(), cfg);

    for (int i = 0; i < 500; ++i) {
        const auto name =
            "ds" + std::to_string(rng.uniformInt(0, 20));
        // Sizes up to the whole cache (but never beyond).
        const double max_bytes =
            static_cast<double>(cfg.cache_carts) *
            defaultConfig().cartCapacity().value();
        const double bytes = rng.uniform(1e12, max_bytes * 0.999);
        const auto access = cache.access(name, bytes);
        EXPECT_LE(cache.occupiedCarts(), cfg.cache_carts);
        EXPECT_GE(access.total_time, access.stage_time);
        EXPECT_GE(access.dhl_energy, 0.0);
    }
    EXPECT_EQ(cache.accesses(), 500u);
    EXPECT_LE(cache.hits(), cache.accesses());
}

TEST_P(PlacementProperty, HitsAreFreeOfLoadTime)
{
    Rng rng(GetParam() + 9);
    PlacementConfig cfg;
    cfg.cache_carts = 16;
    CartCache cache(defaultConfig(), cfg);
    for (int i = 0; i < 300; ++i) {
        const auto name = "ds" + std::to_string(rng.uniformInt(0, 8));
        const auto access =
            cache.access(name, u::terabytes(rng.uniform(100, 400)));
        if (access.hit)
            EXPECT_DOUBLE_EQ(access.load_time, 0.0);
        else
            EXPECT_GT(access.load_time, 0.0);
    }
}

TEST_P(PlacementProperty, ResidencyAgreesWithHits)
{
    Rng rng(GetParam() + 77);
    PlacementConfig cfg;
    cfg.cache_carts = 8;
    CartCache cache(defaultConfig(), cfg);
    for (int i = 0; i < 300; ++i) {
        const auto name = "ds" + std::to_string(rng.uniformInt(0, 12));
        const bool was_resident = cache.resident(name);
        const auto access =
            cache.access(name, u::terabytes(rng.uniform(100, 500)));
        EXPECT_EQ(access.hit, was_resident);
        EXPECT_TRUE(cache.resident(name)); // always resident after
    }
}

TEST_P(PlacementProperty, SmallerCachesHitLessUnderZipf)
{
    Rng rng_a(GetParam() + 100);
    Rng rng_b(GetParam() + 100); // identical traffic
    PlacementConfig small;
    small.cache_carts = 4;
    PlacementConfig big;
    big.cache_carts = 24;
    CartCache cache_small(defaultConfig(), small);
    CartCache cache_big(defaultConfig(), big);

    dhl::ZipfTable zipf(16, 1.0);
    for (int i = 0; i < 800; ++i) {
        const auto ra = zipf.sample(rng_a);
        const auto rb = zipf.sample(rng_b);
        cache_small.access("ds" + std::to_string(ra),
                           u::terabytes(400));
        cache_big.access("ds" + std::to_string(rb), u::terabytes(400));
    }
    EXPECT_LE(cache_small.hitRate(), cache_big.hitRate() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Values(13u, 31u, 113u));
