/**
 * @file
 * Unit tests for the storage/dataset/ML-model catalogues (paper Tables
 * I, II, IV).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "storage/catalog.hpp"

using namespace dhl::storage;
namespace u = dhl::units;

TEST(DeviceCatalog, HasTheThreeTableIiRows)
{
    const auto &devices = deviceCatalog();
    ASSERT_EQ(devices.size(), 3u);
    EXPECT_EQ(devices[0].name, "WD Gold");
    EXPECT_EQ(devices[1].name, "Nimbus ExaDrive");
    EXPECT_EQ(devices[2].name, "Sabrent Rocket 4 Plus");
}

TEST(DeviceCatalog, ReferenceM2Specs)
{
    const auto &m2 = referenceM2Ssd();
    EXPECT_DOUBLE_EQ(m2.capacity, u::terabytes(8));
    EXPECT_DOUBLE_EQ(m2.mass, u::grams(5.67));
    EXPECT_EQ(m2.form_factor, FormFactor::M2);
    EXPECT_DOUBLE_EQ(m2.seq_read_bw, u::megabytes(7100));
    EXPECT_DOUBLE_EQ(m2.seq_write_bw, u::megabytes(6000));
}

TEST(DeviceCatalog, PaperDensityComparison)
{
    // Paper §II-A: the 8 TB M.2 is almost 100x lighter than the 3.5"
    // HDD for just 12.5x less capacity — i.e. ~40x the per-gram
    // density... check both ratios directly.
    const auto &hdd = findDevice("WD Gold");
    const auto &m2 = referenceM2Ssd();
    EXPECT_NEAR(hdd.mass / m2.mass, 118.0, 2.0); // "almost 100x lighter"
    EXPECT_NEAR(hdd.capacity / m2.capacity, 3.0, 1e-9);
    // The paper's 12.5x compares against a 100 TB-class drive:
    const auto &nimbus = findDevice("Nimbus ExaDrive");
    EXPECT_NEAR(nimbus.capacity / m2.capacity, 12.5, 1e-9);
    // M.2 wins on bytes per kg against both.
    EXPECT_GT(m2.bytesPerKg(), hdd.bytesPerKg());
    EXPECT_GT(m2.bytesPerKg(), nimbus.bytesPerKg());
}

TEST(DeviceCatalog, NimbusBeatsHddCapacityByFiveX)
{
    // Paper §II-A: "100TB SSDs ... beat the largest regular HDD in
    // capacity by 5x" (24 TB Gold, ~20 TB class).
    const auto &nimbus = findDevice("Nimbus ExaDrive");
    const auto &hdd = findDevice("WD Gold");
    EXPECT_GE(nimbus.capacity / hdd.capacity, 4.0);
}

TEST(DeviceCatalog, UnknownDeviceFatal)
{
    EXPECT_THROW(findDevice("Floppy 1.44MB"), dhl::FatalError);
}

TEST(DatasetCatalog, ReferenceDlrm)
{
    const auto &d = referenceDlrmDataset();
    EXPECT_DOUBLE_EQ(d.size, u::petabytes(29));
    EXPECT_EQ(d.kind, DatasetKind::MlTraining);
    EXPECT_DOUBLE_EQ(d.creation_rate, 0.0);
}

TEST(DatasetCatalog, StreamingSourcesHaveRates)
{
    const auto &lhc = findDataset("LHC CMS Detector");
    EXPECT_DOUBLE_EQ(lhc.creation_rate, u::terabytes(150));
    EXPECT_EQ(lhc.kind, DatasetKind::Physics);

    const auto &meta = findDataset("Meta Daily Data");
    EXPECT_NEAR(meta.creation_rate * u::days(1.0), u::petabytes(4), 1.0);
}

TEST(DatasetCatalog, UnknownDatasetFatal)
{
    EXPECT_THROW(findDataset("MNIST"), dhl::FatalError);
}

TEST(MlModelCatalog, TableIvRows)
{
    const auto &models = mlModelCatalog();
    ASSERT_EQ(models.size(), 6u);
    // Spot checks: GPT-3 and the DLRM the experiments use.
    EXPECT_EQ(models[0].name, "GPT-3");
    EXPECT_DOUBLE_EQ(models[0].parameters, 175e9);
    EXPECT_DOUBLE_EQ(models[0].size, u::gigabytes(700));
    const auto &dlrm = models[5];
    EXPECT_EQ(dlrm.name, "DLRM 2022");
    EXPECT_DOUBLE_EQ(dlrm.size, u::terabytes(44));
    EXPECT_EQ(dlrm.origin, "Meta");
}

TEST(MlModelCatalog, SizesFollowFourBytesPerParameter)
{
    // The paper's 32-bit/parameter rule; DLRM's published 44 TB is the
    // one row that rounds loosely (3.67 B/param).
    for (const auto &m : mlModelCatalog())
        EXPECT_NEAR(m.size / m.parameters, 4.0, 0.4) << m.name;
}

TEST(EnumNames, RoundTrip)
{
    EXPECT_EQ(to_string(FormFactor::M2), "M.2");
    EXPECT_EQ(to_string(FormFactor::Hdd35), "3.5\" HDD");
    EXPECT_EQ(to_string(DatasetKind::Genomics), "Genomics");
    EXPECT_EQ(to_string(DatasetKind::WebCrawl), "Web Crawl");
}
