/**
 * @file
 * Unit tests for the velocity profiles, pinned to the paper's Table VI
 * trip times.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "physics/profile.hpp"

using namespace dhl::physics;
using namespace dhl::qty::literals;
namespace qty = dhl::qty;

TEST(LimLength, PaperValues)
{
    // Paper §IV-A1: LIMs of 5 / 20 / 45 m for 100 / 200 / 300 m/s at
    // 1000 m/s^2.
    EXPECT_DOUBLE_EQ(limLength(100_mps, 1000_mps2).value(), 5.0);
    EXPECT_DOUBLE_EQ(limLength(200_mps, 1000_mps2).value(), 20.0);
    EXPECT_DOUBLE_EQ(limLength(300_mps, 1000_mps2).value(), 45.0);
}

TEST(LimLength, RejectsBadInputs)
{
    EXPECT_THROW(limLength(0_mps, 1000_mps2), dhl::FatalError);
    EXPECT_THROW(limLength(100_mps, 0_mps2), dhl::FatalError);
    EXPECT_THROW(limLength(-100.0_mps, 1000_mps2), dhl::FatalError);
}

TEST(PeakSpeed, ReachesVmaxOnLongTracks)
{
    EXPECT_DOUBLE_EQ(peakSpeed(500_m, 200_mps, 1000_mps2).value(), 200.0);
    // Exactly 2 LIMs.
    EXPECT_DOUBLE_EQ(peakSpeed(80_m, 200_mps, 1000_mps2).value(), 200.0);
}

TEST(PeakSpeed, TriangularOnShortTracks)
{
    // 40 m track cannot reach 200 m/s out-and-back: peak =
    // sqrt(40*1000).
    EXPECT_NEAR(peakSpeed(40_m, 200_mps, 1000_mps2).value(), 200.0, 1e-9);
    EXPECT_NEAR(peakSpeed(10_m, 200_mps, 1000_mps2).value(), 100.0, 1e-9);
}

TEST(TravelTime, PaperApproxMatchesTableVi)
{
    // Trip times in Table VI are 6 s docking + these travel times.
    const auto mode = KinematicsMode::PaperApprox;
    EXPECT_NEAR(travelTime(500_m, 100_mps, 1000_mps2, mode).value(), 5.05,
                1e-12);
    EXPECT_NEAR(travelTime(500_m, 200_mps, 1000_mps2, mode).value(), 2.60,
                1e-12);
    EXPECT_NEAR(travelTime(500_m, 300_mps, 1000_mps2, mode).value(),
                500.0 / 300.0 + 0.15, 1e-12);
    EXPECT_NEAR(travelTime(100_m, 200_mps, 1000_mps2, mode).value(), 0.60,
                1e-12);
    EXPECT_NEAR(travelTime(1000_m, 200_mps, 1000_mps2, mode).value(), 5.10,
                1e-12);
}

TEST(TravelTime, TrapezoidIsSlowerThanPaperApprox)
{
    // The exact profile charges v/a of overhead, the paper's
    // approximation only v/(2a).
    for (double v : {100.0, 200.0, 300.0}) {
        const qty::Seconds exact =
            travelTime(500_m, qty::MetresPerSecond{v}, 1000_mps2,
                       KinematicsMode::Trapezoid);
        const qty::Seconds paper =
            travelTime(500_m, qty::MetresPerSecond{v}, 1000_mps2,
                       KinematicsMode::PaperApprox);
        EXPECT_GT(exact.value(), paper.value());
        EXPECT_NEAR((exact - paper).value(), v / 2000.0, 1e-12);
    }
}

TEST(TravelTime, TriangularWhenTrackTooShort)
{
    // Both modes agree on triangular profiles.
    const qty::Seconds t_paper =
        travelTime(10_m, 200_mps, 1000_mps2, KinematicsMode::PaperApprox);
    const qty::Seconds t_trap =
        travelTime(10_m, 200_mps, 1000_mps2, KinematicsMode::Trapezoid);
    EXPECT_DOUBLE_EQ(t_paper.value(), t_trap.value());
    EXPECT_NEAR(t_paper.value(), 2.0 * std::sqrt(10.0 / 1000.0), 1e-12);
}

TEST(VelocityProfileTest, TrapezoidStructure)
{
    VelocityProfile p(500_m, 200_mps, 1000_mps2);
    EXPECT_DOUBLE_EQ(p.peakSpeed().value(), 200.0);
    EXPECT_DOUBLE_EQ(p.accelTime().value(), 0.2);
    EXPECT_DOUBLE_EQ(p.cruiseTime().value(), 460.0 / 200.0);
    EXPECT_DOUBLE_EQ(p.totalTime().value(), 0.4 + 2.3);
}

TEST(VelocityProfileTest, VelocityEndpointsAreZero)
{
    VelocityProfile p(500_m, 200_mps, 1000_mps2);
    EXPECT_DOUBLE_EQ(p.velocityAt(0.0_s).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(p.totalTime()).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(-1.0_s).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(p.totalTime() + 1.0_s).value(), 0.0);
}

TEST(VelocityProfileTest, VelocityMidpointsMatchPhases)
{
    VelocityProfile p(500_m, 200_mps, 1000_mps2);
    EXPECT_DOUBLE_EQ(p.velocityAt(0.1_s).value(), 100.0); // mid-accel
    EXPECT_DOUBLE_EQ(p.velocityAt(1.0_s).value(), 200.0); // cruise
    EXPECT_NEAR(p.velocityAt(p.totalTime() - 0.1_s).value(), 100.0, 1e-9);
}

TEST(VelocityProfileTest, PositionMonotoneAndComplete)
{
    VelocityProfile p(500_m, 200_mps, 1000_mps2);
    EXPECT_DOUBLE_EQ(p.positionAt(0.0_s).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.positionAt(p.totalTime()).value(), 500.0);
    double prev = -1.0;
    for (double t = 0.0; t <= p.totalTime().value(); t += 0.01) {
        const double x = p.positionAt(dhl::qty::Seconds{t}).value();
        EXPECT_GE(x, prev);
        prev = x;
    }
    // End of acceleration covers exactly one LIM length.
    EXPECT_NEAR(p.positionAt(p.accelTime()).value(), 20.0, 1e-9);
}

TEST(VelocityProfileTest, TriangularProfile)
{
    VelocityProfile p(10_m, 200_mps, 1000_mps2);
    EXPECT_NEAR(p.peakSpeed().value(), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(p.cruiseTime().value(), 0.0);
    EXPECT_NEAR(p.positionAt(p.totalTime()).value(), 10.0, 1e-9);
}
