/**
 * @file
 * Unit tests for the velocity profiles, pinned to the paper's Table VI
 * trip times.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "physics/profile.hpp"

using namespace dhl::physics;

TEST(LimLength, PaperValues)
{
    // Paper §IV-A1: LIMs of 5 / 20 / 45 m for 100 / 200 / 300 m/s at
    // 1000 m/s^2.
    EXPECT_DOUBLE_EQ(limLength(100, 1000), 5.0);
    EXPECT_DOUBLE_EQ(limLength(200, 1000), 20.0);
    EXPECT_DOUBLE_EQ(limLength(300, 1000), 45.0);
}

TEST(LimLength, RejectsBadInputs)
{
    EXPECT_THROW(limLength(0, 1000), dhl::FatalError);
    EXPECT_THROW(limLength(100, 0), dhl::FatalError);
    EXPECT_THROW(limLength(-100, 1000), dhl::FatalError);
}

TEST(PeakSpeed, ReachesVmaxOnLongTracks)
{
    EXPECT_DOUBLE_EQ(peakSpeed(500, 200, 1000), 200.0);
    EXPECT_DOUBLE_EQ(peakSpeed(80, 200, 1000), 200.0); // exactly 2 LIMs
}

TEST(PeakSpeed, TriangularOnShortTracks)
{
    // 40 m track cannot reach 200 m/s out-and-back: peak =
    // sqrt(40*1000).
    EXPECT_NEAR(peakSpeed(40, 200, 1000), 200.0, 1e-9);
    EXPECT_NEAR(peakSpeed(10, 200, 1000), 100.0, 1e-9);
}

TEST(TravelTime, PaperApproxMatchesTableVi)
{
    // Trip times in Table VI are 6 s docking + these travel times.
    const auto mode = KinematicsMode::PaperApprox;
    EXPECT_NEAR(travelTime(500, 100, 1000, mode), 5.05, 1e-12);
    EXPECT_NEAR(travelTime(500, 200, 1000, mode), 2.60, 1e-12);
    EXPECT_NEAR(travelTime(500, 300, 1000, mode), 500.0 / 300.0 + 0.15,
                1e-12);
    EXPECT_NEAR(travelTime(100, 200, 1000, mode), 0.60, 1e-12);
    EXPECT_NEAR(travelTime(1000, 200, 1000, mode), 5.10, 1e-12);
}

TEST(TravelTime, TrapezoidIsSlowerThanPaperApprox)
{
    // The exact profile charges v/a of overhead, the paper's
    // approximation only v/(2a).
    for (double v : {100.0, 200.0, 300.0}) {
        const double exact =
            travelTime(500, v, 1000, KinematicsMode::Trapezoid);
        const double paper =
            travelTime(500, v, 1000, KinematicsMode::PaperApprox);
        EXPECT_GT(exact, paper);
        EXPECT_NEAR(exact - paper, v / 2000.0, 1e-12);
    }
}

TEST(TravelTime, TriangularWhenTrackTooShort)
{
    // Both modes agree on triangular profiles.
    const double t_paper =
        travelTime(10, 200, 1000, KinematicsMode::PaperApprox);
    const double t_trap =
        travelTime(10, 200, 1000, KinematicsMode::Trapezoid);
    EXPECT_DOUBLE_EQ(t_paper, t_trap);
    EXPECT_NEAR(t_paper, 2.0 * std::sqrt(10.0 / 1000.0), 1e-12);
}

TEST(VelocityProfileTest, TrapezoidStructure)
{
    VelocityProfile p(500, 200, 1000);
    EXPECT_DOUBLE_EQ(p.peakSpeed(), 200.0);
    EXPECT_DOUBLE_EQ(p.accelTime(), 0.2);
    EXPECT_DOUBLE_EQ(p.cruiseTime(), 460.0 / 200.0);
    EXPECT_DOUBLE_EQ(p.totalTime(), 0.4 + 2.3);
}

TEST(VelocityProfileTest, VelocityEndpointsAreZero)
{
    VelocityProfile p(500, 200, 1000);
    EXPECT_DOUBLE_EQ(p.velocityAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(p.totalTime()), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(p.velocityAt(p.totalTime() + 1.0), 0.0);
}

TEST(VelocityProfileTest, VelocityMidpointsMatchPhases)
{
    VelocityProfile p(500, 200, 1000);
    EXPECT_DOUBLE_EQ(p.velocityAt(0.1), 100.0);  // mid-acceleration
    EXPECT_DOUBLE_EQ(p.velocityAt(1.0), 200.0);  // cruise
    EXPECT_NEAR(p.velocityAt(p.totalTime() - 0.1), 100.0, 1e-9);
}

TEST(VelocityProfileTest, PositionMonotoneAndComplete)
{
    VelocityProfile p(500, 200, 1000);
    EXPECT_DOUBLE_EQ(p.positionAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p.positionAt(p.totalTime()), 500.0);
    double prev = -1.0;
    for (double t = 0.0; t <= p.totalTime(); t += 0.01) {
        const double x = p.positionAt(t);
        EXPECT_GE(x, prev);
        prev = x;
    }
    // End of acceleration covers exactly one LIM length.
    EXPECT_NEAR(p.positionAt(p.accelTime()), 20.0, 1e-9);
}

TEST(VelocityProfileTest, TriangularProfile)
{
    VelocityProfile p(10, 200, 1000);
    EXPECT_NEAR(p.peakSpeed(), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(p.cruiseTime(), 0.0);
    EXPECT_NEAR(p.positionAt(p.totalTime()), 10.0, 1e-9);
}
