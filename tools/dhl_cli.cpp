/**
 * @file
 * dhl_cli — the command-line front end to the library.
 *
 * Subcommands:
 *
 *   launch     single-launch metrics for a DHL configuration
 *   bulk       move a dataset: trips, time, energy, route comparisons
 *   simulate   the same move on the event-driven simulator
 *   cost       materials cost (Table VIII) for a configuration
 *   tco        capex + energy opex vs the optical network
 *   crossover  break-even dataset sizes vs a single optical link
 *   ingest     training-epoch ingestion: utilisation and stalls
 *   sweep      Figure 6 power sweep via the experiment runner
 *   serve      open-loop serving mode: staged load, per-stage SLOs,
 *              checkpoint/restore across DES epochs
 *   plan       Monte-Carlo capacity planning: size tracks, carts and
 *              vacuum plants against sampled demand at a target SLO
 *              quantile
 *
 * Every subcommand shares the configuration flags --speed, --length,
 * --ssds (the paper's three swept parameters) plus --dock, --mode and
 * --stations where they apply.  `dhl_cli <cmd> --help` lists them.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/logging.hpp"
#include "common/properties.hpp"
#include "common/units.hpp"
#include "cost/opex.hpp"
#include "dhl/comparison.hpp"
#include "dhl/config_io.hpp"
#include "dhl/fleet.hpp"
#include "dhl/reliability.hpp"
#include "dhl/simulation.hpp"
#include "exp/experiment_runner.hpp"
#include "mlsim/ingest_sim.hpp"
#include "mlsim/sweep.hpp"
#include "exp/slo.hpp"
#include "ops/fleet_ops.hpp"
#include "plan/planner.hpp"
#include "serve/serving.hpp"
#include "workloads/arrival.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

/** Register the shared configuration flags. */
void
addConfigFlags(ArgParser &args)
{
    args.addOption("config",
                   "properties file with the full configuration "
                   "(flags override it)");
    args.addOption("speed", "maximum cart speed, m/s", "200");
    args.addOption("length", "track length, m", "500");
    args.addOption("ssds", "M.2 SSDs per cart", "32");
    args.addOption("dock", "dock/undock time, s", "3");
    args.addOption("mode", "track mode: exclusive|pipelined|dual",
                   "exclusive");
    args.addOption("stations", "rack docking stations", "1");
}

/** Build a DhlConfig from --config (if given) plus the shared flags. */
core::DhlConfig
configFromFlags(const ArgParser &args)
{
    core::DhlConfig cfg = core::defaultConfig();
    const bool from_file = args.provided("config");
    if (from_file)
        cfg = core::loadConfig(Properties::fromFile(args.get("config")));

    // Flags override the file; without a file, flag defaults apply.
    auto apply = [&](const char *flag, auto setter) {
        if (!from_file || args.provided(flag))
            setter();
    };
    apply("speed", [&] { cfg.max_speed = args.getDouble("speed"); });
    apply("length",
          [&] { cfg.track_length = args.getDouble("length"); });
    apply("ssds", [&] {
        cfg.ssds_per_cart =
            static_cast<std::size_t>(args.getInt("ssds"));
    });
    apply("dock", [&] { cfg.dock_time = args.getDouble("dock"); });
    apply("mode", [&] {
        const std::string mode = args.get("mode");
        if (mode == "exclusive") {
            cfg.track_mode = core::TrackMode::Exclusive;
        } else if (mode == "pipelined") {
            cfg.track_mode = core::TrackMode::Pipelined;
        } else if (mode == "dual") {
            cfg.track_mode = core::TrackMode::DualTrack;
        } else {
            fatal("unknown --mode '" + mode +
                  "' (expected exclusive|pipelined|dual)");
        }
    });
    apply("stations", [&] {
        cfg.docking_stations =
            static_cast<std::size_t>(args.getInt("stations"));
    });
    // Bulk runs may need many carts.
    cfg.library_slots = std::max<std::size_t>(cfg.library_slots, 4096);
    return cfg;
}

int
cmdLaunch(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli launch", "single-launch metrics");
    addConfigFlags(args);
    if (!args.parse(argc, argv, std::cout))
        return 0;
    const core::DhlConfig cfg = configFromFlags(args);
    const core::AnalyticalModel model(cfg);
    const auto m = model.launch();
    std::cout << cfg.label() << "\n"
              << "  cart mass     "
              << u::formatSig(u::toGrams(m.cart_mass.value()), 4)
              << " g\n"
              << "  capacity      " << u::formatBytes(m.capacity) << "\n"
              << "  energy        " << u::formatEnergy(m.energy) << "\n"
              << "  trip time     " << u::formatDuration(m.trip_time)
              << "\n"
              << "  bandwidth     " << u::formatBandwidth(m.bandwidth)
              << "\n"
              << "  peak power    " << u::formatPower(m.peak_power) << "\n"
              << "  avg power     " << u::formatPower(m.avg_power) << "\n"
              << "  efficiency    " << u::formatSig(m.efficiency, 4)
              << " GB/J\n";
    return 0;
}

int
cmdBulk(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli bulk",
                   "closed-form bulk move with route comparisons");
    addConfigFlags(args);
    args.addOption("petabytes", "dataset size, PB", "29");
    args.addSwitch("pipelined", "overlap shuttling (dual-track model)");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    const core::DhlConfig cfg = configFromFlags(args);
    const double bytes = u::petabytes(args.getDouble("petabytes"));
    core::BulkOptions opts;
    opts.pipelined = args.getSwitch("pipelined");

    const auto row =
        core::computeDesignSpaceRow(cfg, dhl::qty::Bytes{bytes}, opts);
    std::cout << cfg.label() << " moving " << u::formatBytes(bytes)
              << ":\n"
              << "  carts/trips   " << row.bulk.loaded_trips << " loaded, "
              << row.bulk.total_trips << " total\n"
              << "  time          "
              << u::formatDuration(row.bulk.total_time) << "\n"
              << "  energy        "
              << u::formatEnergy(row.bulk.total_energy) << "\n"
              << "  avg power     "
              << u::formatPower(row.bulk.avg_power) << "\n"
              << "  speedup       "
              << u::formatSig(row.time_speedup, 4)
              << "x vs one 400 Gbit/s link\n";
    for (const auto &rc : row.routes) {
        std::cout << "  vs " << rc.route_name << "        "
                  << u::formatSig(rc.energy_reduction, 4)
                  << "x less energy\n";
    }
    return 0;
}

/**
 * Parse a --maintenance plan: comma-separated windows of the form
 * start:duration[:period[:track]], all times in simulated seconds
 * (period 0 or absent = one-shot; track absent = fleet-wide).
 */
ops::MaintenanceConfig
parseMaintenancePlan(const std::string &spec)
{
    ops::MaintenanceConfig plan;
    std::istringstream windows(spec);
    std::string window;
    while (std::getline(windows, window, ',')) {
        std::vector<double> fields;
        std::istringstream parts(window);
        std::string part;
        while (std::getline(parts, part, ':')) {
            try {
                fields.push_back(std::stod(part));
            } catch (const std::exception &) {
                fatal("bad --maintenance field '" + part + "' in '" +
                      window + "'");
            }
        }
        fatal_if(fields.size() < 2 || fields.size() > 4,
                 "--maintenance windows are start:duration[:period"
                 "[:track]], got '" + window + "'");
        ops::MaintenanceWindow w;
        w.start = fields[0];
        w.duration = fields[1];
        if (fields.size() > 2)
            w.period = fields[2];
        if (fields.size() > 3)
            w.track = static_cast<int>(fields[3]);
        plan.windows.push_back(w);
    }
    fatal_if(plan.windows.empty(), "--maintenance plan is empty");
    return plan;
}

int
cmdSimulate(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli simulate",
                   "event-driven bulk move (carts, stations, queueing)");
    addConfigFlags(args);
    args.addOption("petabytes", "dataset size, PB", "1");
    args.addSwitch("pipelined", "issue all carts up front");
    args.addSwitch("reads", "read each cart at the rack");
    args.addOption("failures", "per-SSD per-trip failure probability",
                   "0");
    args.addSwitch("faults", "inject component faults (LIM/track/"
                             "station outages, cart breakdowns)");
    args.addOption("fault-seed", "fault-injection seed", "1");
    args.addOption("fault-accel",
                   "accelerate fault rates by this factor (divides "
                   "every MTBF and MTTR)",
                   "1");
    args.addOption("dump-trace",
                   "dump trace records after the run: a category "
                   "(api|track|fault|failure) or 'all'");
    args.addOption("tracks",
                   "parallel DHL tracks (enables the ops layer, like "
                   "any --ops-*/--maintenance/--domains flag)",
                   "1");
    args.addOption("ops-policy",
                   "fleet dispatch policy: round-robin|least-queued|"
                   "availability",
                   "round-robin");
    args.addOption("maintenance",
                   "planned windows start:dur[:period[:track]] in "
                   "simulated s, comma-separated");
    args.addOption("domains",
                   "tracks per shared vacuum plant (0 = no correlated "
                   "faults)",
                   "0");
    args.addOption("plant-mtbf", "shared-plant MTBF, h", "8760");
    args.addOption("plant-mttr", "shared-plant MTTR, h", "4");
    args.addOption("wear-gain",
                   "wear-coupling gain on cart breakdowns and station "
                   "MTBF (requires --faults)",
                   "0");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    const core::DhlConfig cfg = configFromFlags(args);
    core::BulkRunOptions opts;
    opts.pipelined = args.getSwitch("pipelined");
    opts.include_read_time = args.getSwitch("reads");
    opts.failure_per_trip = args.getDouble("failures");
    faults::FaultConfig fault_cfg;
    if (args.getSwitch("faults")) {
        const double accel = args.getDouble("fault-accel");
        fatal_if(!(accel > 0.0), "--fault-accel must be positive");
        core::ReliabilityConfig rel;
        rel.lim_mtbf /= accel;
        rel.lim_mttr /= accel;
        rel.track_mtbf /= accel;
        rel.track_mttr /= accel;
        rel.station_mtbf /= accel;
        rel.station_mttr /= accel;
        rel.cart_repair_hours /= accel;
        fault_cfg = core::toFaultConfig(
            rel, static_cast<std::uint64_t>(
                     args.getInt("fault-seed")));
    }

    const bool ops_mode =
        args.provided("tracks") || args.provided("ops-policy") ||
        args.provided("maintenance") || args.provided("domains") ||
        args.provided("wear-gain");
    if (ops_mode) {
        const auto tracks =
            static_cast<std::size_t>(args.getInt("tracks"));
        fatal_if(tracks == 0, "--tracks must be at least 1");
        ops::OpsConfig oc;
        oc.dispatch.policy =
            ops::parseDispatchPolicy(args.get("ops-policy"));
        if (args.provided("maintenance"))
            oc.maintenance = parseMaintenancePlan(args.get("maintenance"));
        const auto domain_size =
            static_cast<std::size_t>(args.getInt("domains"));
        if (domain_size > 0) {
            oc.domains.enabled = true;
            oc.domains.domain_size = domain_size;
            oc.domains.plant_mtbf = args.getDouble("plant-mtbf");
            oc.domains.plant_mttr = args.getDouble("plant-mttr");
            oc.domains.seed = static_cast<std::uint64_t>(
                args.getInt("fault-seed"));
        }
        const double wear_gain = args.getDouble("wear-gain");
        if (wear_gain > 0.0) {
            oc.wear.breakdown_gain = wear_gain;
            oc.wear.station_gain = wear_gain;
        }
        oc.faults = fault_cfg;
        ops::FleetOps fleet_ops(cfg, tracks, oc);
        const auto r = fleet_ops.runBulkTransfer(
            u::petabytes(args.getDouble("petabytes")), opts);
        std::cout << tracks << " x " << cfg.label() << " (DES + ops, "
                  << ops::to_string(oc.dispatch.policy) << "):\n"
                  << "  carts         " << r.base.carts << "\n"
                  << "  launches      " << r.base.launches << "\n"
                  << "  time          "
                  << u::formatDuration(r.base.total_time) << "\n"
                  << "  energy        "
                  << u::formatEnergy(r.base.total_energy) << "\n"
                  << "  bandwidth     "
                  << u::formatBandwidth(r.base.effective_bandwidth)
                  << "\n"
                  << "  ssd failures  " << r.base.ssd_failures << "\n"
                  << "  ops summary:\n"
                  << "    maint windows " << r.maintenance_windows
                  << "\n"
                  << "    plant outages " << r.plant_outages << "\n"
                  << "    reroutes      " << r.reroutes << "\n"
                  << "    deferrals     " << r.deferrals << "\n"
                  << "    open p99      "
                  << u::formatSig(r.open_latency_p99, 4) << " s\n"
                  << "    availability  "
                  << u::formatSig(r.fleet_availability, 4)
                  << " over the run\n";
        return 0;
    }

    core::DhlSimulation sim(cfg);
    if (args.provided("dump-trace"))
        sim.trace().enable();
    opts.faults = fault_cfg;
    const auto r = sim.runBulkTransfer(
        u::petabytes(args.getDouble("petabytes")), opts);
    std::cout << cfg.label() << " (DES):\n"
              << "  carts         " << r.carts << "\n"
              << "  launches      " << r.launches << "\n"
              << "  time          " << u::formatDuration(r.total_time)
              << "\n"
              << "  energy        " << u::formatEnergy(r.total_energy)
              << "\n"
              << "  bandwidth     "
              << u::formatBandwidth(r.effective_bandwidth) << "\n"
              << "  ssd failures  " << r.ssd_failures << "\n";
    if (sim.faultsEnabled()) {
        const auto *fs = sim.faultState();
        auto &ctl = sim.controller();
        std::cout << "  fault summary (seed "
                  << sim.faultInjector()->config().seed << "):\n"
                  << "    outages      lim "
                  << fs->failures(faults::Component::Lim) << ", track "
                  << fs->failures(faults::Component::Track)
                  << ", station "
                  << fs->failures(faults::Component::Station) << "\n"
                  << "    parked trips " << ctl.parkedLaunches() << "\n"
                  << "    held opens   " << ctl.heldOpens() << "\n"
                  << "    breakdowns   " << ctl.cartBreakdowns() << "\n"
                  << "    availability "
                  << u::formatSig(
                         fs->observedAvailability(r.total_time), 4)
                  << " over the run\n";
    }
    if (args.provided("dump-trace")) {
        const std::string category = args.get("dump-trace");
        std::cout << "trace (" << category << "):\n";
        if (category == "all") {
            sim.trace().dump(std::cout);
        } else {
            for (const auto &rec : sim.trace().filter(category)) {
                std::cout << u::formatSig(rec.when, 9) << " ["
                          << rec.category << "] " << rec.object << ": "
                          << rec.message << "\n";
            }
        }
    }
    return 0;
}

/** Print an aligned table: headers + rows (first column left-aligned,
 *  the rest right-aligned). */
void
printTable(std::ostream &os, const std::vector<std::string> &headers,
           const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = width[c] - row[c].size();
            if (c == 0) {
                os << row[c] << std::string(pad, ' ');
            } else {
                os << "  " << std::string(pad, ' ') << row[c];
            }
        }
        os << "\n";
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

int
cmdServe(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli serve",
                   "open-loop serving: staged load, per-stage SLOs, "
                   "checkpoint/restore");
    addConfigFlags(args);
    args.addOption("stages",
                   "load profile name:duration:rate[:end_rate],... "
                   "(seconds, req/s; end_rate ramps linearly)",
                   "ramp:600:0:0.5,peak:1200:0.5,cool:600:0.5:0");
    args.addOption("request-gb", "median request size, GB", "64");
    args.addOption("sigma", "log-normal request-size shape (0 = fixed)",
                   "0");
    args.addOption("tracks", "parallel DHL tracks", "1");
    args.addOption("epoch",
                   "epoch length, s (checkpoint granularity)", "600");
    args.addOption("carts", "cart pool per track", "4");
    args.addOption("max-pending",
                   "admission queue bound (beyond it, shed)", "1024");
    args.addOption("policy",
                   "dispatch policy: round-robin|least-queued|"
                   "availability|te",
                   "least-queued");
    args.addOption("min-priority",
                   "availability policy: admission floor while any "
                   "track is down",
                   "0");
    args.addOption("seed", "master serving seed", "1");
    args.addOption("des-shards",
                   "partition the fleet DES onto N cores "
                   "(byte-identical to 1)",
                   "1");
    args.addSwitch("te",
                   "enable the traffic-engineering controller "
                   "(hybrid DHL/optical substrate split)");
    args.addOption("te-mode", "dhl-only|optical-only|hybrid", "hybrid");
    args.addOption("te-period", "TE control epoch, s", "60");
    args.addOption("te-small-gb",
                   "requests at or below this ride optical, GB", "8");
    args.addOption("te-optical-gbps", "optical uplink capacity, Gbit/s",
                   "100");
    args.addOption("te-headroom",
                   "fraction of optical capacity the TE plan may use",
                   "0.9");
    args.addOption("te-multiplier", "usage -> demand multiplier", "1.1");
    args.addOption("te-history", "demand estimator window, epochs", "8");
    args.addOption("te-floor",
                   "contended requests below this priority are "
                   "downgraded or held",
                   "1");
    args.addOption("te-route", "optical route for energy: A0|A1|A2|B|C",
                   "C");
    args.addSwitch("faults", "inject component faults per track");
    args.addOption("fault-seed", "fault-injection seed", "1");
    args.addOption("fault-accel",
                   "accelerate fault rates by this factor", "1");
    args.addOption("maintenance",
                   "planned windows start:dur[:period[:track]], "
                   "comma-separated");
    args.addOption("domains",
                   "tracks per shared vacuum plant (0 = none)", "0");
    args.addOption("plant-mtbf", "shared-plant MTBF, h", "8760");
    args.addOption("plant-mttr", "shared-plant MTTR, h", "4");
    args.addOption("checkpoint",
                   "write a checkpoint here when the command stops");
    args.addOption("checkpoint-every",
                   "also rewrite the checkpoint every N epochs", "0");
    args.addOption("resume", "restore from this checkpoint first");
    args.addOption("stop-after", "stop after N epochs (0 = run dry)",
                   "0");
    args.addSwitch("stats", "dump the statistics tree after the run");
    if (!args.parse(argc, argv, std::cout))
        return 0;

    serve::ServeConfig cfg;
    cfg.dhl = configFromFlags(args);
    cfg.tracks = static_cast<std::size_t>(args.getInt("tracks"));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.stages = workloads::parseStageSpec(
        args.get("stages"), u::gigabytes(args.getDouble("request-gb")),
        args.getDouble("sigma"));
    cfg.epoch = args.getDouble("epoch");
    cfg.carts_per_track =
        static_cast<std::size_t>(args.getInt("carts"));
    cfg.max_pending =
        static_cast<std::size_t>(args.getInt("max-pending"));
    cfg.policy = ops::parseDispatchPolicy(args.get("policy"));
    cfg.min_priority_degraded =
        static_cast<int>(args.getInt("min-priority"));
    cfg.des_shards =
        static_cast<std::size_t>(args.getInt("des-shards"));
    if (args.getSwitch("te")) {
        cfg.te.enabled = true;
        cfg.te.mode = te::parseTeMode(args.get("te-mode"));
        cfg.te.control_period = args.getDouble("te-period");
        cfg.te.small_bytes =
            u::gigabytes(args.getDouble("te-small-gb"));
        cfg.te.optical_capacity =
            u::gigabitsPerSecond(args.getDouble("te-optical-gbps"));
        cfg.te.headroom = args.getDouble("te-headroom");
        cfg.te.usage_multiplier = args.getDouble("te-multiplier");
        cfg.te.history =
            static_cast<std::size_t>(args.getInt("te-history"));
        cfg.te.min_priority_contended =
            static_cast<int>(args.getInt("te-floor"));
        cfg.te.route = args.get("te-route");
    }
    if (args.getSwitch("faults")) {
        const double accel = args.getDouble("fault-accel");
        fatal_if(!(accel > 0.0), "--fault-accel must be positive");
        core::ReliabilityConfig rel;
        rel.lim_mtbf /= accel;
        rel.lim_mttr /= accel;
        rel.track_mtbf /= accel;
        rel.track_mttr /= accel;
        rel.station_mtbf /= accel;
        rel.station_mttr /= accel;
        rel.cart_repair_hours /= accel;
        cfg.faults = core::toFaultConfig(
            rel,
            static_cast<std::uint64_t>(args.getInt("fault-seed")));
    }
    if (args.provided("maintenance"))
        cfg.maintenance = parseMaintenancePlan(args.get("maintenance"));
    const auto domain_size =
        static_cast<std::size_t>(args.getInt("domains"));
    if (domain_size > 0) {
        cfg.domains.enabled = true;
        cfg.domains.domain_size = domain_size;
        cfg.domains.plant_mtbf = args.getDouble("plant-mtbf");
        cfg.domains.plant_mttr = args.getDouble("plant-mttr");
        cfg.domains.seed =
            static_cast<std::uint64_t>(args.getInt("fault-seed"));
    }

    serve::ServingSim sim(cfg);

    if (args.provided("resume")) {
        std::ifstream in(args.get("resume"));
        fatal_if(!in, "cannot open --resume checkpoint '" +
                          args.get("resume") + "'");
        sim.restore(in);
        std::cerr << "resumed at epoch " << sim.epochsCompleted()
                  << ", t = " << u::formatDuration(sim.now()) << "\n";
    }

    auto writeCheckpoint = [&](const std::string &path) {
        std::ofstream out(path, std::ios::trunc);
        fatal_if(!out, "cannot write --checkpoint '" + path + "'");
        sim.checkpoint(out);
    };

    const auto stop_after =
        static_cast<std::size_t>(args.getInt("stop-after"));
    const auto every =
        static_cast<std::size_t>(args.getInt("checkpoint-every"));
    std::size_t stepped = 0;
    while (sim.stepEpoch()) {
        ++stepped;
        if (every != 0 && args.provided("checkpoint") &&
            stepped % every == 0)
            writeCheckpoint(args.get("checkpoint"));
        if (stop_after != 0 && stepped >= stop_after)
            break;
    }
    if (args.provided("checkpoint"))
        writeCheckpoint(args.get("checkpoint"));

    std::cerr << (sim.done() ? "profile complete" : "stopped early")
              << " after " << sim.epochsCompleted() << " epochs, t = "
              << u::formatDuration(sim.now()) << "\n";

    printTable(std::cout, exp::sloHeaders(), exp::sloRows(sim.sloTable()));
    if (sim.teEnabled()) {
        std::cout << "\n";
        printTable(std::cout, exp::classSloHeaders(),
                   exp::classSloRows(sim.teTable()));
        std::cout << "optical served  " << sim.opticalServed() << "\n"
                  << "te downgrades   " << sim.teDowngrades() << "\n"
                  << "optical energy  "
                  << u::formatEnergy(sim.opticalEnergy()) << "\n\n";
    }
    std::cout << "served    " << sim.totalServed() << "\n"
              << "shed      " << sim.totalShed() << "\n"
              << "backlog   " << sim.queueDepth() << "\n"
              << "launches  " << sim.totalLaunches() << "\n"
              << "energy    " << u::formatEnergy(sim.totalEnergy())
              << "\n"
              << "end time  " << u::formatDuration(sim.now()) << "\n"
              << "epochs    " << sim.epochsCompleted() << "\n";
    if (args.getSwitch("stats"))
        sim.dumpStats(std::cout);
    return 0;
}

int
cmdCost(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli cost", "materials cost (Table VIII)");
    args.addOption("speed", "top speed, m/s", "200");
    args.addOption("length", "track length, m", "500");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    cost::CostModel model;
    const double d = args.getDouble("length");
    const double v = args.getDouble("speed");
    const auto rail = model.railCost(d);
    const auto lim = model.limCost(v);
    std::cout << "DHL " << d << " m @ " << v << " m/s:\n"
              << "  aluminium rings  $" << u::formatSig(rail.aluminium, 4)
              << "\n  PVC rail         $" << u::formatSig(rail.pvc_rail, 4)
              << "\n  PVC vacuum tube  $" << u::formatSig(rail.pvc_tube, 4)
              << "\n  LIM copper       $" << u::formatSig(lim.copper, 4)
              << "\n  VFD              $" << u::formatSig(lim.vfd, 4)
              << "\n  total            $"
              << u::formatSig(model.totalCost(d, v), 5) << "\n";
    return 0;
}

int
cmdTco(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli tco", "capex + energy opex vs the network");
    addConfigFlags(args);
    args.addOption("petabytes", "bytes per transfer, PB", "2");
    args.addOption("per-day", "transfers per day", "4");
    args.addOption("years", "deployment lifetime, years", "5");
    args.addOption("route", "network route: A0|A1|A2|B|C", "C");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    cost::TcoModel model;
    cost::TransferDuty duty{};
    duty.bytes_per_transfer = u::petabytes(args.getDouble("petabytes"));
    duty.transfers_per_day = args.getDouble("per-day");
    duty.years = args.getDouble("years");
    const auto cmp = model.compare(configFromFlags(args),
                                   network::findRoute(args.get("route")),
                                   duty);
    auto print = [](const char *side, const cost::CostLedger &l) {
        std::cout << "  " << side << ": capex $"
                  << u::formatSig(l.capex, 5) << ", energy "
                  << u::formatEnergy(l.energy_per_day) << "/day, opex $"
                  << u::formatSig(l.opex_per_year, 4) << "/yr, total $"
                  << u::formatSig(l.total, 5) << "\n";
    };
    print("DHL    ", cmp.dhl);
    print("network", cmp.network);
    std::cout << "  payback: "
              << (cmp.payback_days == 0.0
                      ? "immediate"
                      : u::formatSig(cmp.payback_days, 4) + " days")
              << "\n";
    return 0;
}

int
cmdCrossover(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli crossover",
                   "break-even dataset sizes vs one optical link");
    addConfigFlags(args);
    args.addOption("route", "network route: A0|A1|A2|B|C", "A0");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    const core::DhlConfig cfg = configFromFlags(args);
    const auto be =
        core::breakEven(cfg, network::findRoute(args.get("route")));
    std::cout << cfg.label() << " vs route " << be.route_name << ":\n"
              << "  wins on time from    "
              << u::formatBytes(be.bytes_for_time) << "\n"
              << "  wins on energy from  "
              << u::formatBytes(be.bytes_for_energy) << "\n"
              << "  wins outright from   "
              << u::formatBytes(be.bytes_to_win()) << "\n";
    return 0;
}

int
cmdIngest(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli ingest",
                   "training-epoch ingestion: utilisation and stalls");
    addConfigFlags(args);
    args.addOption("petabytes", "dataset size, PB", "1");
    args.addOption("batch-tb", "batch size, TB", "1");
    args.addOption("compute", "compute per batch, s", "5");
    args.addOption("buffer-tb", "staging buffer, TB", "512");
    args.addOption("links", "use N network links instead of the DHL",
                   "0");
    args.addOption("route", "network route when --links > 0", "A0");
    args.addSwitch("pipelined", "pipeline DHL returns");
    if (!args.parse(argc, argv, std::cout))
        return 0;

    mlsim::IngestConfig icfg;
    icfg.batch_bytes = u::terabytes(args.getDouble("batch-tb"));
    icfg.step_compute_time = args.getDouble("compute");
    icfg.buffer_capacity = u::terabytes(args.getDouble("buffer-tb"));
    mlsim::IngestSim sim(icfg);

    const double dataset = u::petabytes(args.getDouble("petabytes"));
    const double links = args.getDouble("links");
    const mlsim::IngestResult r =
        links > 0.0
            ? sim.runWithNetwork(dataset,
                                 network::findRoute(args.get("route")),
                                 links)
            : sim.runWithDhl(dataset, configFromFlags(args),
                             args.getSwitch("pipelined"));
    std::cout << "epoch over " << u::formatBytes(dataset)
              << (links > 0.0 ? " via " + args.get("route") + " x" +
                                    args.get("links")
                              : " via DHL")
              << ":\n"
              << "  epoch time    " << u::formatDuration(r.epoch_time)
              << "\n"
              << "  steps         " << r.steps << "\n"
              << "  compute busy  " << u::formatDuration(r.compute_busy)
              << "\n"
              << "  stalled       " << u::formatDuration(r.stall_time)
              << "\n"
              << "  utilisation   " << u::formatSig(r.utilisation * 100, 3)
              << " %\n";
    return 0;
}

int
cmdFleet(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli fleet",
                   "event-driven bulk move over K parallel tracks");
    addConfigFlags(args);
    args.addOption("petabytes", "dataset size, PB", "2.9");
    args.addOption("tracks", "parallel DHL tracks", "2");
    args.addSwitch("reads", "read each cart at the rack");
    if (!args.parse(argc, argv, std::cout))
        return 0;
    const core::DhlConfig cfg = configFromFlags(args);
    const auto tracks =
        static_cast<std::size_t>(args.getInt("tracks"));
    core::DhlFleet fleet(cfg, tracks);
    core::BulkRunOptions opts;
    opts.include_read_time = args.getSwitch("reads");
    const auto r = fleet.runBulkTransfer(
        u::petabytes(args.getDouble("petabytes")), opts);
    std::cout << tracks << " x " << cfg.label() << " (DES fleet):\n"
              << "  carts         " << r.carts << "\n"
              << "  launches      " << r.launches << "\n"
              << "  time          " << u::formatDuration(r.total_time)
              << "\n"
              << "  energy        " << u::formatEnergy(r.total_energy)
              << "\n"
              << "  fleet power   " << u::formatPower(r.avg_power)
              << "\n"
              << "  bandwidth     "
              << u::formatBandwidth(r.effective_bandwidth) << "\n";
    return 0;
}

int
cmdSweep(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli sweep",
                   "Figure 6 power sweep run through the experiment "
                   "runner: the configured DHL plus every canonical "
                   "optical route, one scenario per series");
    addConfigFlags(args);
    args.addOption("max-kw", "sweep budget ceiling, kW", "40");
    args.addOption("points", "points per continuous series", "16");
    args.addOption("jobs",
                   "parallel scenario jobs; 0 = hardware concurrency, "
                   "1 = exact-serial fallback",
                   "0");
    args.addSwitch("csv", "emit CSV instead of the boxed table");
    args.addSwitch("timings",
                   "also print per-scenario wall times (these vary "
                   "run to run; the result table does not)");
    if (!args.parse(argc, argv, std::cout))
        return 0;

    const core::DhlConfig cfg = configFromFlags(args);
    const double max_power = u::kilowatts(args.getDouble("max-kw"));
    const int n_points = static_cast<int>(args.getInt("points"));
    const mlsim::TrainingWorkload workload = mlsim::dlrmWorkload();

    exp::Experiment fig6("sweep");
    fig6.add(mlsim::dhlSweepScenario(workload, cfg, max_power))
        .separator_after = true;
    for (const auto &route : network::canonicalRoutes()) {
        fig6.add(mlsim::opticalSweepScenario(workload, route, 1.0e3,
                                             max_power, n_points))
            .separator_after = true;
    }

    exp::RunOptions ropts;
    ropts.jobs = static_cast<std::size_t>(args.getInt("jobs"));
    const exp::ExperimentRunner runner(ropts);
    const exp::ExperimentResult result = runner.run(fig6);

    const bool csv = args.getSwitch("csv");
    const TextTable table = result.table(mlsim::sweepHeaders(), !csv);
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    if (args.getSwitch("timings")) {
        std::cout << "\nScenario timings (" << result.jobs << " jobs, "
                  << u::formatSig(result.wall_seconds * 1e3, 4)
                  << " ms total):\n";
        result.timingTable().print(std::cout);
    }
    return 0;
}

int
cmdPlan(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli plan",
                   "Monte-Carlo capacity planning: size tracks, carts "
                   "and vacuum plants against sampled demand at a "
                   "target SLO quantile");
    addConfigFlags(args);
    args.addOption("users", "median active users, millions", "2");
    args.addOption("users-sigma", "log-normal shape of users", "0.35");
    args.addOption("bytes-per-user", "median demand, GB/user/day", "2");
    args.addOption("bytes-sigma", "log-normal shape of demand", "0.4");
    args.addOption("peak-min", "diurnal peak-factor floor", "1.2");
    args.addOption("peak-max", "diurnal peak-factor ceiling", "3");
    args.addOption("peak-corr", "corr(users, peak) in [-1, 1]", "0.5");
    args.addOption("request-gb", "median interactive request, GB", "64");
    args.addOption("slo", "request-latency SLO, s", "60");
    args.addOption("slo-quantile",
                   "required SLO-attainment quantile (0..1)", "0.999");
    args.addOption("tracks-max", "lattice ceiling on tracks", "6");
    args.addOption("carts-max", "lattice ceiling on carts/track", "12");
    args.addOption("tracks-per-plant",
                   "tracks one vacuum plant evacuates", "4");
    args.addOption("plant-capex", "vacuum-plant capex, USD", "12000");
    args.addOption("cart-capex", "per-cart capex, USD", "1500");
    args.addOption("scenarios", "sampled demand scenarios", "4096");
    args.addOption("bootstrap", "bootstrap resamples for the CI", "200");
    args.addOption("jobs",
                   "parallel lattice jobs; 0 = hardware concurrency, "
                   "1 = exact-serial fallback",
                   "1");
    args.addOption("seed", "root seed (scenarios + bootstrap)", "1");
    args.addSwitch("all", "print every lattice point, not just the "
                          "designs meeting the target");
    args.addSwitch("validate",
                   "DES cross-check of the winner's launch rate");
    args.addSwitch("csv", "emit CSV instead of the boxed table");
    if (!args.parse(argc, argv, std::cout))
        return 0;

    plan::PlannerConfig cfg;
    cfg.assumptions.dhl = configFromFlags(args);
    constexpr double people_per_million = 1.0e6;
    cfg.demand.users_median =
        args.getDouble("users") * people_per_million;
    cfg.demand.users_sigma = args.getDouble("users-sigma");
    cfg.demand.bytes_per_user_day_median =
        u::gigabytes(args.getDouble("bytes-per-user"));
    cfg.demand.bytes_sigma = args.getDouble("bytes-sigma");
    cfg.demand.peak_min = args.getDouble("peak-min");
    cfg.demand.peak_max = args.getDouble("peak-max");
    cfg.demand.peak_user_corr = args.getDouble("peak-corr");
    cfg.demand.request_bytes_median =
        u::gigabytes(args.getDouble("request-gb"));
    cfg.assumptions.slo_latency = args.getDouble("slo");
    cfg.assumptions.target_quantile = args.getDouble("slo-quantile");
    cfg.assumptions.tracks_per_plant =
        static_cast<std::size_t>(args.getInt("tracks-per-plant"));
    cfg.assumptions.plant_capex = args.getDouble("plant-capex");
    cfg.assumptions.cart_capex = args.getDouble("cart-capex");
    cfg.tracks_max = static_cast<std::size_t>(args.getInt("tracks-max"));
    cfg.carts_max = static_cast<std::size_t>(args.getInt("carts-max"));
    cfg.scenarios = static_cast<std::size_t>(args.getInt("scenarios"));
    cfg.bootstrap = static_cast<std::size_t>(args.getInt("bootstrap"));
    cfg.jobs = static_cast<std::size_t>(args.getInt("jobs"));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.validate_des = args.getSwitch("validate");

    const plan::CapacityPlanner planner(cfg);
    const plan::PlanResult result = planner.plan();

    const bool csv = args.getSwitch("csv");
    const bool all = args.getSwitch("all") || csv;
    TextTable table({"design", "capex_usd", "attainment", "ci95_lo",
                     "ci95_hi", "p50_s", "slo_q_s", "util", "energy_day",
                     "meets"});
    for (std::size_t i = 0; i < result.reports.size(); ++i) {
        const plan::DesignReport &r = result.reports[i];
        if (!all && !r.meets_target)
            continue;
        const auto &d = r.constants.design;
        std::string label = "t";
        label += std::to_string(d.tracks);
        label += ".c";
        label += std::to_string(d.carts_per_track);
        label += ".p";
        label += std::to_string(d.plants);
        if (static_cast<std::ptrdiff_t>(i) == result.winner)
            label += " *";
        table.addRow({label, u::formatSig(r.constants.capex, 6),
                      u::formatSig(r.attainment, 5),
                      u::formatSig(r.attainment_lo, 5),
                      u::formatSig(r.attainment_hi, 5),
                      u::formatSig(r.latency_p50, 4),
                      u::formatSig(r.latency_slo_q, 4),
                      u::formatSig(r.mean_utilisation, 4),
                      u::formatEnergy(r.mean_energy_day),
                      r.meets_target ? "yes" : "no"});
    }
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    if (!csv) {
        if (result.hasWinner()) {
            const plan::DesignReport &w = result.winnerReport();
            const auto &d = w.constants.design;
            std::cout << "\nWinner: " << d.tracks << " tracks x "
                      << d.carts_per_track << " carts, " << d.plants
                      << " plants — capex "
                      << u::formatSig(w.constants.capex, 6)
                      << " USD, attainment "
                      << u::formatSig(w.attainment, 5) << " [95% CI "
                      << u::formatSig(w.attainment_lo, 5) << ", "
                      << u::formatSig(w.attainment_hi, 5) << "]\n";
        } else {
            std::cout << "\nNo lattice point meets the target quantile;"
                      << " widen the lattice or relax the SLO.\n";
        }
        if (result.des.ran) {
            std::cout << "DES cross-check: "
                      << u::formatSig(result.des.des_rate, 4)
                      << " launches/s/track vs closed-form "
                      << u::formatSig(result.des.analytical_rate, 4)
                      << " (ratio "
                      << u::formatSig(result.des.ratio, 4) << ")\n";
        }
    }
    return 0;
}

int
cmdConfig(int argc, const char *const *argv)
{
    ArgParser args("dhl_cli config",
                   "emit the resolved configuration as a properties "
                   "file (redirect to save it)");
    addConfigFlags(args);
    if (!args.parse(argc, argv, std::cout))
        return 0;
    std::cout << core::saveConfig(configFromFlags(args)).toString();
    return 0;
}

void
usage(std::ostream &os)
{
    os << "dhl_cli — data centre hyperloop modelling toolkit\n\n"
       << "Usage: dhl_cli <command> [flags]\n\n"
       << "Commands:\n"
       << "  launch     single-launch metrics\n"
       << "  bulk       closed-form bulk move + route comparisons\n"
       << "  simulate   event-driven bulk move\n"
       << "  cost       materials cost (Table VIII)\n"
       << "  tco        capex + energy opex vs the network\n"
       << "  crossover  break-even dataset sizes (§V-E)\n"
       << "  ingest     training-epoch ingestion stalls\n"
       << "  sweep      Figure 6 power sweep (--jobs N parallel "
          "scenarios)\n"
       << "  fleet      event-driven bulk move over parallel tracks\n"
       << "  serve      open-loop serving: staged load, per-stage "
          "SLOs,\n"
       << "             checkpoint/restore across DES epochs\n"
       << "  plan       Monte-Carlo capacity planning at a target SLO\n"
          "             quantile (--jobs N parallel lattice points)\n"
       << "  config     emit the resolved configuration as properties\n\n"
       << "Run 'dhl_cli <command> --help' for that command's flags.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cout);
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "launch")
            return cmdLaunch(argc - 1, argv + 1);
        if (cmd == "bulk")
            return cmdBulk(argc - 1, argv + 1);
        if (cmd == "simulate")
            return cmdSimulate(argc - 1, argv + 1);
        if (cmd == "cost")
            return cmdCost(argc - 1, argv + 1);
        if (cmd == "tco")
            return cmdTco(argc - 1, argv + 1);
        if (cmd == "crossover")
            return cmdCrossover(argc - 1, argv + 1);
        if (cmd == "ingest")
            return cmdIngest(argc - 1, argv + 1);
        if (cmd == "sweep")
            return cmdSweep(argc - 1, argv + 1);
        if (cmd == "fleet")
            return cmdFleet(argc - 1, argv + 1);
        if (cmd == "serve")
            return cmdServe(argc - 1, argv + 1);
        if (cmd == "plan")
            return cmdPlan(argc - 1, argv + 1);
        if (cmd == "config")
            return cmdConfig(argc - 1, argv + 1);
        if (cmd == "--help" || cmd == "-h" || cmd == "help") {
            usage(std::cout);
            return 0;
        }
        std::cerr << "unknown command: " << cmd << "\n\n";
        usage(std::cerr);
        return 1;
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
