#!/usr/bin/env python3
"""Run clang-tidy over src/ using the repo's .clang-tidy config.

The container/CI split: clang-tidy is not part of the baked toolchain
on every dev machine, so this wrapper *detects* the binary and exits 0
with a notice when it is absent (the pure-Python tools/lint_dhl.py and
tools/dhl_analyze.py gates still run everywhere).  CI installs
clang-tidy and therefore always gets the full check.

The exit summary reports per-file diagnostic counts so a CI log shows
*where* the findings cluster without scrolling the full dump, and —
mirroring bench_util's parseArgs — an unknown ``--flag`` is a hard
error (exit 2), never silently ignored.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [files...]
  tools/run_clang_tidy.py --self-test

With no files, lints every .cpp under src/.  Requires a compile
database (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
"""

import os
import re
import shutil
import subprocess
import sys

# A clang-tidy diagnostic line: "path:line:col: warning: ... [check]".
DIAG_RE = re.compile(r"^(?:([^:\n]+):\d+:\d+:\s+)?(warning|error):",
                     re.MULTILINE)

KNOWN_FLAGS = ("--build-dir", "--binary")
KNOWN_SWITCHES = ("--self-test", "--help", "-h")


def parse_args(argv):
    """Hand-rolled parse mirroring bench_util parseArgs: --flag VALUE
    and --flag=VALUE forms, positional file arguments, and exit 2 with
    "error: unknown flag '...'" on anything else starting with --."""
    opts = {"build_dir": "build", "binary": None, "self_test": False,
            "files": []}
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--help", "-h"):
            print(__doc__)
            sys.exit(0)
        elif arg == "--self-test":
            opts["self_test"] = True
        elif arg == "--build-dir" and i + 1 < len(argv):
            i += 1
            opts["build_dir"] = argv[i]
        elif arg.startswith("--build-dir="):
            opts["build_dir"] = arg[len("--build-dir="):]
        elif arg == "--binary" and i + 1 < len(argv):
            i += 1
            opts["binary"] = argv[i]
        elif arg.startswith("--binary="):
            opts["binary"] = arg[len("--binary="):]
        elif arg.startswith("--"):
            sys.stderr.write("error: unknown flag '%s'\n" % arg)
            sys.exit(2)
        else:
            opts["files"].append(arg)
        i += 1
    return opts


def count_diagnostics(output):
    """Per-file diagnostic counts from clang-tidy's stdout.  Lines
    without a file prefix (e.g. the generic "N warnings generated")
    are not diagnostics and do not count."""
    counts = {}
    for m in DIAG_RE.finditer(output):
        path = m.group(1)
        if path is None:
            continue
        counts[path] = counts.get(path, 0) + 1
    return counts


def summarize(counts, n_files):
    total = sum(counts.values())
    if not counts:
        print("run_clang_tidy: 0 diagnostics across %d files" % n_files)
        return
    for path in sorted(counts):
        print("run_clang_tidy:   %4d  %s" % (counts[path], path))
    print("run_clang_tidy: %d diagnostic(s) in %d of %d files"
          % (total, len(counts), n_files))


def self_test():
    failures = []
    checks = [0]

    def check(name, cond):
        checks[0] += 1
        if not cond:
            failures.append(name)

    # Flag parsing: both value forms, positionals, the self-test switch.
    o = parse_args(["--build-dir", "bt", "a.cpp", "b.cpp"])
    check("flag value form",
          o["build_dir"] == "bt" and o["files"] == ["a.cpp", "b.cpp"])
    o = parse_args(["--build-dir=bt2", "--binary=clang-tidy-18"])
    check("flag = form",
          o["build_dir"] == "bt2" and o["binary"] == "clang-tidy-18")
    check("self-test switch", parse_args(["--self-test"])["self_test"])

    # Unknown flags exit 2 loudly (run in-process via SystemExit; the
    # error lines themselves are muted so the self-test output stays
    # readable).
    real_stderr, sys.stderr = sys.stderr, open(os.devnull, "w")
    try:
        for bad in ("--jobs", "--build-dri=x", "--files"):
            try:
                parse_args([bad])
                code = None
            except SystemExit as e:
                code = e.code
            check("unknown flag %s exits 2" % bad, code == 2)
    finally:
        sys.stderr.close()
        sys.stderr = real_stderr

    # Diagnostic counting on a representative clang-tidy transcript.
    out = (
        "src/dhl/track.cpp:10:5: warning: do not use magic numbers "
        "[readability-magic-numbers]\n"
        "    int x = 42;\n"
        "        ^\n"
        "src/dhl/track.cpp:20:1: error: unknown type name 'Foo' "
        "[clang-diagnostic-error]\n"
        "src/sim/simulator.cpp:3:2: warning: x [bugprone-foo]\n"
        "14 warnings generated.\n")
    c = count_diagnostics(out)
    check("per-file counts",
          c == {"src/dhl/track.cpp": 2, "src/sim/simulator.cpp": 1})
    check("summary line untallied", "14 warnings" not in repr(c))
    check("clean output", count_diagnostics("2 warnings generated.\n")
          == {})

    if failures:
        for name in failures:
            print("SELF-TEST FAIL: %s" % name)
        return 1
    print("run_clang_tidy self-test: %d checks passed" % checks[0])
    return 0


def main(argv=None):
    opts = parse_args(sys.argv[1:] if argv is None else argv)
    if opts["self_test"]:
        return self_test()

    binary = opts["binary"] or next(
        (b for b in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                     "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")
         if shutil.which(b)), None)
    if binary is None:
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(the lint_dhl.py / dhl_analyze.py gates still apply)")
        return 0

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.exists(
            os.path.join(opts["build_dir"], "compile_commands.json")):
        print("run_clang_tidy: no compile_commands.json in %s; configure "
              "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
              % opts["build_dir"])
        return 2

    files = opts["files"]
    if not files:
        files = []
        for dirpath, _dirnames, filenames in os.walk(
                os.path.join(root, "src")):
            files.extend(os.path.join(dirpath, f)
                         for f in sorted(filenames) if f.endswith(".cpp"))

    cmd = [binary, "-p", opts["build_dir"], "--quiet"] + files
    print("run_clang_tidy: %s over %d files" % (binary, len(files)))
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(proc.stdout)
    summarize(count_diagnostics(proc.stdout), len(files))
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
