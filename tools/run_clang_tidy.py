#!/usr/bin/env python3
"""Run clang-tidy over src/ using the repo's .clang-tidy config.

The container/CI split: clang-tidy is not part of the baked toolchain
on every dev machine, so this wrapper *detects* the binary and exits 0
with a notice when it is absent (the pure-Python tools/lint_dhl.py
gate still runs everywhere).  CI installs clang-tidy and therefore
always gets the full check.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [files...]

With no files, lints every .cpp under src/.  Requires a compile
database (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
"""

import argparse
import os
import shutil
import subprocess
import sys


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("--binary", default=None,
                        help="clang-tidy binary (default: first of "
                             "clang-tidy, clang-tidy-18..14 on PATH)")
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src/**/*.cpp)")
    args = parser.parse_args(argv)

    binary = args.binary or next(
        (b for b in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                     "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")
         if shutil.which(b)), None)
    if binary is None:
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(the lint_dhl.py gate still applies)")
        return 0

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.exists(
            os.path.join(args.build_dir, "compile_commands.json")):
        print("run_clang_tidy: no compile_commands.json in %s; configure "
              "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" % args.build_dir)
        return 2

    files = args.files
    if not files:
        files = []
        for dirpath, _dirnames, filenames in os.walk(
                os.path.join(root, "src")):
            files.extend(os.path.join(dirpath, f)
                         for f in sorted(filenames) if f.endswith(".cpp"))

    cmd = [binary, "-p", args.build_dir, "--quiet"] + files
    print("run_clang_tidy: %s over %d files" % (binary, len(files)))
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main())
