#!/usr/bin/env python3
"""Run the sharded-fleet microbenchmarks and emit BENCH_fleet.json.

Wraps bench/microbench_fleet: runs it with --benchmark_format=json and a
configurable repetition count, reduces each benchmark to its best-of-N
items_per_second (events/s for the fleet loop), and groups the results
by shard count so the shards-N-vs-1 speedup — the number the ISSUE
acceptance criteria are written against — sits next to the raw
google-benchmark output.  On a single-core container the speedup column
reports ~1.0x; the benchmark still proves the sharded path runs, and
the determinism suite proves it byte-identical.

Usage:
    run_fleet_bench.py <microbench_fleet-binary> \
        [--output BENCH_fleet.json] [--min-time 0.2] [--repetitions 5]

Benchmarks are named BM_<Case>/<shards> (e.g. BM_FleetParallel/4); the
trailing argument is parsed as the shard count.
"""

import argparse
import json
import os
import subprocess
import sys


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("binary", help="path to the microbench_fleet binary")
    p.add_argument("--output", default="BENCH_fleet.json")
    p.add_argument("--min-time", default="0.2",
                   help="per-benchmark min time in seconds (plain number)")
    p.add_argument("--repetitions", type=int, default=5)
    return p.parse_args(argv)


def run_benchmarks(binary, min_time, repetitions):
    cmd = [
        binary,
        "--benchmark_format=json",
        "--benchmark_min_time=%s" % min_time,
        "--benchmark_repetitions=%d" % repetitions,
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def best_items_per_second(raw):
    """Best-of-N items_per_second per benchmark (aggregates skipped)."""
    best = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        name = b["run_name"]
        ips = b.get("items_per_second")
        if ips is None:
            continue
        best[name] = max(best.get(name, 0.0), ips)
    return best


def shards_of(name):
    """BM_FleetParallel/4 -> ("BM_FleetParallel", 4); None if unparsed."""
    case, _, arg = name.partition("/")
    try:
        return case, int(arg)
    except ValueError:
        return None


def speedups(best):
    """Per case: events/s by shard count plus the N-vs-1 ratios."""
    by_case = {}
    for name, ips in best.items():
        parsed = shards_of(name)
        if parsed is None:
            continue
        case, shards = parsed
        by_case.setdefault(case, {})[shards] = ips
    table = {}
    for case, by_shards in sorted(by_case.items()):
        base = by_shards.get(1)
        table[case] = {
            "events_per_second": {str(s): by_shards[s]
                                  for s in sorted(by_shards)},
            "speedup_vs_1_shard": {
                str(s): round(by_shards[s] / base, 3)
                for s in sorted(by_shards)
            } if base else {},
        }
    return table


def main(argv):
    args = parse_args(argv)
    raw = run_benchmarks(args.binary, args.min_time, args.repetitions)
    best = best_items_per_second(raw)
    if not best:
        sys.exit("no benchmark results with items_per_second found")

    doc = {
        "metric": "items_per_second (fleet events/s), best of %d "
                  "repetitions" % args.repetitions,
        "cores_available": os.cpu_count(),
        "best_items_per_second": best,
        "by_shard_count": speedups(best),
        "raw": raw,
    }

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")

    for case, row in sorted(doc["by_shard_count"].items()):
        for s, ips in row["events_per_second"].items():
            line = "%-24s shards=%-2s %12.0f events/s" % (case, s, ips)
            ratio = row["speedup_vs_1_shard"].get(s)
            if ratio is not None:
                line += "   %5.2fx vs 1 shard" % ratio
            print(line)
    print("wrote %s" % args.output)


if __name__ == "__main__":
    main(sys.argv[1:])
