#!/usr/bin/env python3
"""Run the DES-kernel microbenchmarks and emit BENCH_kernel.json.

Wraps bench/microbench_kernel: runs it with --benchmark_format=json and
a configurable repetition count, reduces each benchmark to its
best-of-N items_per_second (the metric the ISSUE acceptance criteria
are written against), and — when a baseline file is supplied — records
the before/after speedup next to the raw google-benchmark output.

Usage:
    run_kernel_bench.py <microbench_kernel-binary> \
        [--output BENCH_kernel.json] [--min-time 0.2] [--repetitions 5] \
        [--baseline tools/bench_baseline_kernel.json]

The baseline file maps benchmark name -> items_per_second, e.g.
    {"BM_KernelScheduleRun/1024": 4716070, ...}
"""

import argparse
import json
import subprocess
import sys


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("binary", help="path to the microbench_kernel binary")
    p.add_argument("--output", default="BENCH_kernel.json")
    p.add_argument("--min-time", default="0.2",
                   help="per-benchmark min time in seconds (plain number)")
    p.add_argument("--repetitions", type=int, default=5)
    p.add_argument("--baseline", default=None,
                   help="JSON file mapping benchmark name -> baseline "
                        "items_per_second")
    return p.parse_args(argv)


def run_benchmarks(binary, min_time, repetitions):
    cmd = [
        binary,
        "--benchmark_format=json",
        "--benchmark_min_time=%s" % min_time,
        "--benchmark_repetitions=%d" % repetitions,
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def best_items_per_second(raw):
    """Best-of-N items_per_second per benchmark (aggregates skipped)."""
    best = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        name = b["run_name"]
        ips = b.get("items_per_second")
        if ips is None:
            continue
        best[name] = max(best.get(name, 0.0), ips)
    return best


def main(argv):
    args = parse_args(argv)
    raw = run_benchmarks(args.binary, args.min_time, args.repetitions)
    best = best_items_per_second(raw)
    if not best:
        sys.exit("no benchmark results with items_per_second found")

    doc = {
        "metric": "items_per_second, best of %d repetitions"
                  % args.repetitions,
        "best_items_per_second": best,
        "raw": raw,
    }
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
        doc["baseline_items_per_second"] = baseline
        doc["speedup_vs_baseline"] = {
            name: round(ips / baseline[name], 3)
            for name, ips in best.items() if name in baseline
        }

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")

    for name, ips in sorted(best.items()):
        line = "%-32s %12.0f items/s" % (name, ips)
        if "speedup_vs_baseline" in doc and name in doc["speedup_vs_baseline"]:
            line += "   %5.2fx vs baseline" % doc["speedup_vs_baseline"][name]
        print(line)
    print("wrote %s" % args.output)


if __name__ == "__main__":
    main(sys.argv[1:])
