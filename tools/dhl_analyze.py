#!/usr/bin/env python3
"""Whole-program determinism & snapshot-coverage analyzer for the DHL
codebase.

Pure Python (no clang dependency, like tools/lint_dhl.py) so it runs
identically on developer machines and in CI.  Where lint_dhl.py checks
single-file textual invariants (R1-R4), this tool parses the *include
graph* plus a lightweight C++ class-member/statement model of src/ and
enforces the whole-program invariants the byte-identity CI jobs can
only catch after the fact:

  A1  layer-dag            One declarative adjacency table (LAYER_DEPS)
                           covers every directory under src/: each
                           #include edge in the real include graph must
                           be permitted by the table, which fences both
                           directions at once — a layer reaching *up*
                           (physics including dhl/), a fenced consumer
                           set being widened (anything but serve/ops
                           including te/), and any src/ file reaching
                           *out* to the front-end trees (bench/, tools/,
                           examples/).  Subsumes the four hand-rolled
                           layering rules R5-R8 that used to live in
                           lint_dhl.py.  A directory missing from the
                           table is itself a finding (layer-unknown):
                           growing a new subsystem forces a conscious
                           DAG decision.  --dot exports the graph.
  A2  snapshot-coverage    Every class that implements the snapshot
                           protocol (saveState/restoreState taking
                           SnapshotWriter/SnapshotReader, or
                           checkpoint/restore constructing them) must
                           account for each non-static data member: the
                           member is referenced on *both* the save and
                           the restore side, or it carries an explicit
                           in-source allowlist comment
                             // dhl-analyze: transient(<m1>, <m2>): why
                           inside the class body.  Adding a field to
                           ServingSim without serialising it fails CI
                           instead of silently diverging a checkpoint.
  A3  snapshot-keys        The literal `put*` keys written by a class's
                           save side must equal the literal `get*`/
                           `has` keys read by its restore side —
                           a write-only or read-only key is a drifting
                           document schema.
  A4  snapshot-transient   A transient(...) annotation naming a member
                           the class does not declare is stale and must
                           be removed (it would mask a future field).
  A5  unordered-iteration  Range-for / iterator loops over
                           unordered_map/unordered_set whose body
                           accumulates (+=, -=, *=, /=), schedules
                           events, or writes snapshot keys are
                           order-dependent: hash iteration order is not
                           part of the determinism contract.  The
                           sanctioned shape is collect-keys-then-sort.
  A6  literal-seed         Rng construction from an integer literal in
                           src/: every stream must flow through
                           deriveSeed(base, stream) so seeds stay
                           decorrelated and survive scenario reordering
                           (common/random.hpp documents why).
  A7  pointer-key          Pointer-valued keys in ordered containers
                           (std::map/set over T*): iteration order is
                           allocation order, which no two runs share.
  A8  raw-threading        No raw std::thread / std::async / std::mutex
                           (and friends) in src/ outside the ThreadPool
                           implementation, the logging sink's lock and
                           the shard driver — concurrency goes through
                           the caller-participating ThreadPool and the
                           ShardGroup barriers, whose fork/join
                           handshake is the only synchronisation the
                           determinism contract allows.  (Migrated from
                           lint_dhl.py rule R7.)

Usage:
  tools/dhl_analyze.py [--root DIR] [--dot FILE]   analyze (exit 1 on findings)
  tools/dhl_analyze.py --self-test                 run the fixture tests
  tools/dhl_analyze.py --dump-model                print the class model
"""

import argparse
import os
import re
import sys
import tempfile

# ---------------------------------------------------------------------------
# A1: the declarative layer DAG.
#
# For each directory under src/, the set of *other* src/ directories its
# files may #include from (every directory may include itself).  The
# table is the single source of truth for layering: physics/common at
# the bottom; the DES kernel (sim); the transport substrates
# (network/storage); the modelled systems (dhl/mlsim/faults, with cost
# riding on dhl); workload synthesis; and the policy layers
# (ops/serve/te) on top.  bench/, tools/ and examples/ are front-end
# trees *outside* the DAG: they may include anything, nothing in src/
# may include them.
#
# The te fence of old rule R8 falls out of the table: te appears in the
# dependency set of exactly ops and serve, so an include of te/ from
# anywhere else in src/ violates the edge check — the "inbound"
# direction needs no separate rule.
# ---------------------------------------------------------------------------

LAYER_DEPS = {
    "common":    set(),
    "physics":   {"common"},
    "sim":       {"common"},
    "exp":       {"common"},
    "storage":   {"common"},
    "network":   {"common", "sim"},
    "faults":    {"common", "sim"},
    "dhl":       {"common", "sim", "physics", "network", "storage",
                  "faults"},
    "mlsim":     {"common", "sim", "network", "dhl", "exp"},
    "cost":      {"common", "dhl", "network"},
    "workloads": {"common", "sim", "network", "dhl"},
    "te":        {"common", "sim", "dhl"},
    "ops":       {"common", "sim", "network", "dhl", "faults", "te"},
    "serve":     {"common", "sim", "network", "dhl", "faults", "exp",
                  "workloads", "ops", "te"},
    "plan":      {"common", "dhl", "cost", "exp"},
}

FRONTEND_DIRS = ("bench", "tools", "examples")

INCLUDE_RE = re.compile(r'#\s*include\s*["<]([^">]+)[">]')


def validate_layer_table(table):
    """Return a list of problems with an adjacency table: references to
    unknown directories, or a dependency cycle (the table must be a
    DAG, or 'layering' means nothing)."""
    problems = []
    for d, deps in sorted(table.items()):
        for dep in sorted(deps):
            if dep not in table:
                problems.append("%s depends on unknown layer %r" % (d, dep))
            if dep == d:
                problems.append("%s lists itself (self-edges are implicit)"
                                % d)
    # Kahn's algorithm: anything left over sits on a cycle.
    remaining = {d: {x for x in deps if x in table}
                 for d, deps in table.items()}
    while True:
        roots = [d for d, deps in remaining.items() if not deps]
        if not roots:
            break
        for d in roots:
            del remaining[d]
        for deps in remaining.values():
            deps.difference_update(roots)
    if remaining:
        problems.append("dependency cycle through: %s"
                        % ", ".join(sorted(remaining)))
    return problems


def include_target_dir(path):
    """First path component of an include target, with any ../ prefix
    stripped; None for local (bare-filename) or system includes."""
    p = path.replace("\\", "/")
    while p.startswith("../"):
        p = p[3:]
    if "/" not in p:
        return None
    return p.split("/", 1)[0]


# ---------------------------------------------------------------------------
# Lightweight C++ model: comment masking, brace matching, class/member
# extraction, method-definition bodies.
# ---------------------------------------------------------------------------

def mask_comments(text):
    """Replace comment and string-literal contents with spaces,
    preserving every newline so offsets map to the same lines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append(re.sub(r"[^\n]", " ", chunk))
            i = j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('"' + " " * (j - i - 1) + '"')
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("'" + " " * (j - i - 1) + "'")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_brace(text, open_idx):
    """Index of the '}' matching text[open_idx] == '{'; -1 if
    unbalanced.  Call on comment-masked text only."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


CLASS_RE = re.compile(
    r"\b(enum\s+)?(?:class|struct)\s+([A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::[^{;]*)?\{")

TRANSIENT_RE = re.compile(
    r"//\s*dhl-analyze:\s*transient\(([^)]*)\)\s*:?")

MEMBER_SKIP_RE = re.compile(
    r"\b(?:static|using|typedef|friend|template|operator|enum|class|"
    r"struct|return|if|for|while|switch|case|public|private|protected)\b")

MEMBER_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


class ClassModel(object):
    def __init__(self, name, rel_path, line, start, end):
        self.name = name
        self.rel_path = rel_path
        self.line = line
        self.span = (start, end)        # offsets into the file text
        self.members = []               # (name, type_text, line)
        self.transients = {}            # member name -> line
        self.save_bodies = []           # masked body text of save side
        self.restore_bodies = []


def extract_classes(rel_path, text, masked):
    """All class/struct definitions in one file (nested ones too: they
    surface as their own models and their members are not attributed to
    the enclosing class)."""
    classes = []
    for m in CLASS_RE.finditer(masked):
        if m.group(1):                  # enum class
            continue
        open_idx = m.end() - 1
        close = match_brace(masked, open_idx)
        if close < 0:
            continue
        cls = ClassModel(m.group(2), rel_path, line_of(masked, m.start()),
                         m.start(), close)
        body = masked[open_idx + 1:close]
        body_base = open_idx + 1
        cls.members = extract_members(body, masked, body_base)
        # Transient annotations live in comments, inside the class span.
        # A long member list may wrap across lines; each continuation
        # line carries its own leading "//", which is stripped here.
        for t in TRANSIENT_RE.finditer(text, m.start(), close):
            for name in t.group(1).split(","):
                name = name.strip()
                while name.startswith("/"):
                    name = name.lstrip("/").lstrip()
                if name:
                    cls.transients[name] = line_of(text, t.start())
        classes.append(cls)
    return classes


def _mask_nested(body):
    """Blank the contents of nested {...} groups (function bodies,
    nested classes, braced initialisers), then terminate each closing
    brace with ';' so an inline method body never glues itself onto the
    next declaration when splitting on ';'."""
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append("{")
        elif c == "}":
            depth -= 1
            out.append("};" if depth == 0 else " ")
        elif depth > 0:
            out.append("\n" if c == "\n" else " ")
        else:
            out.append(c)
    return "".join(out)


def extract_members(body, masked, body_base):
    """Non-static data members of one class body: (name, type, line)."""
    flat = _mask_nested(body)
    members = []
    pos = 0
    for stmt_m in re.finditer(r"[^;]*;", flat, re.DOTALL):
        stmt = stmt_m.group(0)[:-1]
        stmt_start = stmt_m.start()
        pos = stmt_m.end()
        # Drop access labels glued to the front of the statement.
        stmt = re.sub(r"^\s*(?:public|private|protected)\s*:", "", stmt)
        if "(" in stmt or ")" in stmt:
            continue                    # function declaration
        if MEMBER_SKIP_RE.search(stmt):
            continue
        decl = stmt.split("=", 1)[0]
        decl = re.sub(r"\{[^}]*\}\s*$", "", decl)   # brace-init
        decl = re.sub(r"\[[^\]]*\]\s*$", "", decl)  # array extent
        nm = MEMBER_NAME_RE.search(decl.rstrip())
        if not nm:
            continue
        name = nm.group(1)
        type_text = decl[:nm.start(1)].strip()
        if not type_text:               # a bare identifier is not a decl
            continue
        line = line_of(masked, body_base + stmt_start +
                       len(stmt_m.group(0)) - len(stmt_m.group(0).lstrip()))
        members.append((name, " ".join(type_text.split()), line))
    del pos
    return members


METHOD_DEF_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*::\s*(~?[A-Za-z_]\w*)\s*\(")

INLINE_METHOD_RE = re.compile(r"\b(~?[A-Za-z_]\w*)\s*\(")


def _param_and_body(masked, paren_open):
    """From the '(' of a candidate method definition, return
    (params_text, body_text, body_found) — body_found False for pure
    declarations."""
    depth = 0
    i = paren_open
    while i < len(masked):
        if masked[i] == "(":
            depth += 1
        elif masked[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    if i >= len(masked):
        return "", "", False
    params = masked[paren_open + 1:i]
    j = i + 1
    while j < len(masked) and (masked[j].isspace() or
                               masked[j:j + 5] == "const" or
                               masked[j:j + 8] == "noexcept" or
                               masked[j:j + 8] == "override" or
                               masked[j:j + 5] == "final"):
        if masked[j].isspace():
            j += 1
        elif masked[j:j + 5] == "const":
            j += 5
        elif masked[j:j + 8] in ("noexcept", "override"):
            j += 8
        else:
            j += 5
    if j >= len(masked) or masked[j] != "{":
        return params, "", False
    close = match_brace(masked, j)
    if close < 0:
        return params, "", False
    return params, masked[j + 1:close], True


WRITER_CTOR_RE = re.compile(r"\bSnapshotWriter\s+[A-Za-z_]\w*\s*[({]")
READER_CTOR_RE = re.compile(r"\bSnapshotReader\s+[A-Za-z_]\w*\s*[({]")


def collect_method_bodies(masked):
    """Qualified method definitions in one (masked) file:
    [(class_name, method_name, params, body)]."""
    defs = []
    for m in METHOD_DEF_RE.finditer(masked):
        params, body, found = _param_and_body(masked, m.end() - 1)
        if found:
            defs.append((m.group(1), m.group(2), params, body))
    return defs


def collect_inline_bodies(masked, cls):
    """In-class method definitions inside one class span."""
    start, end = cls.span
    body_region = masked[start:end]
    defs = []
    for m in INLINE_METHOD_RE.finditer(body_region):
        params, body, found = _param_and_body(body_region, m.end() - 1)
        if found:
            defs.append((cls.name, m.group(1), params, body))
    return defs


def side_of(params, body):
    """'save', 'restore', or None for one method definition."""
    if "SnapshotWriter" in params or WRITER_CTOR_RE.search(body):
        return "save"
    if "SnapshotReader" in params or READER_CTOR_RE.search(body):
        return "restore"
    return None


# ---------------------------------------------------------------------------
# Snapshot key extraction (A3).
# ---------------------------------------------------------------------------

# Keys must be extracted from *unmasked* method bodies (string literals
# carry the key names), so the key pass re-runs the body extraction on
# raw text.  put/get with a non-literal first argument (a composed
# key such as "lat" + to_string(i)) is outside the literal check.
PUT_KEY_RE = re.compile(
    r"\.\s*put(?:String|U64|I64|Bool|Double|Rng)\s*\(\s*\"([^\"]+)\"")
GET_KEY_RE = re.compile(
    r"\.\s*(?:get(?:String|U64|I64|Bool|Double|Rng)|has)\s*\(\s*\"([^\"]+)\"")


# ---------------------------------------------------------------------------
# Determinism hazards (A5-A7).
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"((?:const\s+)?(?:std::)?unordered_(?:map|set)\s*<[^;{}()]*?>)\s*&?\s*"
    r"([A-Za-z_]\w*)\s*[;={(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")

ITER_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s+\w+\s*=\s*"
    r"((?:this->)?[A-Za-z_][\w.>\-\[\]]*?)\s*\.\s*c?begin\s*\(")

ACCUM_RE = re.compile(r"(?:\+=|-=|\*=|/=)")
SCHED_RE = re.compile(r"\.\s*schedule\w*\s*\(")
SNAPWRITE_RE = re.compile(r"\.\s*put[A-Z]\w*\s*\(")

RNG_LITERAL_RE = re.compile(r"\bRng\s+[A-Za-z_]\w*\s*[({]\s*(?:0x[0-9a-fA-F]+|\d)"
                            r"|\bRng\s*[({]\s*(?:0x[0-9a-fA-F]+|\d)")

RNG_ALLOWLIST = {"src/common/random.hpp", "src/common/random.cpp"}

POINTER_KEY_RE = re.compile(
    r"\bstd::(?:multi)?(?:map|set)\s*<\s*[^,<>]*\*")

# A8: raw threading primitives.  Everything below either spawns threads
# or synchronises them; simulation code must instead use the ThreadPool
# / ShardGroup machinery so every cross-thread effect goes through a
# deterministic barrier.  (Migrated from lint_dhl.py rule R7.)
RAW_THREADING_RE = re.compile(
    r"\bstd::(?:thread|jthread|async|mutex|recursive_mutex|timed_mutex"
    r"|shared_mutex|condition_variable(?:_any)?|lock_guard|unique_lock"
    r"|shared_lock|scoped_lock)\b")

# The pool implementation, the logging sink's lock, and the shard
# driver are the concurrency layer the rule funnels everyone into.
RAW_THREADING_ALLOWLIST = {
    "src/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
    "src/common/logging.hpp",
    "src/common/logging.cpp",
    "src/sim/shard.hpp",
    "src/sim/shard.cpp",
}


def _split_range_for(masked, for_start):
    """For a `for (` at for_start, return (range_expr, body, header_end)
    if it is a range-for, else None.  body is the masked loop body."""
    i = masked.find("(", for_start)
    depth = 0
    j = i
    colon = -1
    while j < len(masked):
        c = masked[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                break
        elif c == ":" and depth == 1:
            if masked[j - 1] == ":" or masked[j + 1] == ":":
                j += 1
                continue
            colon = j
        elif c == ";" and depth == 1:
            return None                 # classic three-clause for
        j += 1
    if j >= len(masked) or colon < 0:
        return None
    expr = masked[colon + 1:j].strip()
    k = j + 1
    while k < len(masked) and masked[k].isspace():
        k += 1
    if k < len(masked) and masked[k] == "{":
        close = match_brace(masked, k)
        body = masked[k + 1:close] if close > 0 else ""
    else:
        semi = masked.find(";", k)
        body = masked[k:semi] if semi > 0 else masked[k:]
    return expr, body, j


_SUBSCRIPT_RE = re.compile(r"([A-Za-z_]\w*)\s*((?:\[[^\]]*\])*)\s*$")


def _expr_is_unordered(expr, types):
    """Best-effort: does this range expression denote an unordered
    container?  `types` maps identifier -> set of declared type texts;
    when candidates disagree the call stays quiet (conservative)."""
    if "unordered_" in expr:
        return True
    expr = expr.strip()
    expr = re.sub(r"^\s*this->", "", expr)
    m = _SUBSCRIPT_RE.search(expr)
    if not m:
        return False
    name, subscript = m.group(1), m.group(2)
    cands = types.get(name)
    if not cands:
        return False
    if subscript:
        return all(re.search(r"(?:vector|array|deque)\s*<\s*(?:std::)?"
                             r"unordered_", t) for t in cands)
    return all(re.match(r"(?:const\s+)?(?:std::)?unordered_", t)
               for t in cands)


def _body_is_order_dependent(body):
    if ACCUM_RE.search(body):
        return "accumulates in iteration order"
    if SCHED_RE.search(body):
        return "schedules events in iteration order"
    if SNAPWRITE_RE.search(body):
        return "writes snapshot keys in iteration order"
    return None


# ---------------------------------------------------------------------------
# The analysis driver.
# ---------------------------------------------------------------------------

SOURCE_EXTS = (".hpp", ".cpp")


class FileModel(object):
    def __init__(self, rel_path, text):
        self.rel_path = rel_path
        self.posix = rel_path.replace(os.sep, "/")
        self.text = text
        self.masked = mask_comments(text)
        self.classes = []
        self.includes = []              # (line, target)
        for m in INCLUDE_RE.finditer(self.masked):
            # The masked text blanks string contents; re-read the raw
            # include target from the original text at the same span.
            raw = INCLUDE_RE.match(self.text, m.start())
            if raw:
                self.includes.append((line_of(self.text, m.start()),
                                      raw.group(1)))


def load_tree(root, subdirs=("src", "bench", "tools", "examples")):
    files = []
    for sub in subdirs:
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8") as fh:
                    fm = FileModel(rel, fh.read())
                fm.classes = extract_classes(rel, fm.text, fm.masked)
                files.append(fm)
    return files


def src_dir_of(posix):
    """'src/dhl/track.hpp' -> 'dhl'; None outside src/."""
    parts = posix.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check_layers(files, table=None):
    """A1: every include edge of every src/ file against the table, and
    every src/ directory against the table's key set."""
    table = LAYER_DEPS if table is None else table
    findings = []
    for problem in validate_layer_table(table):
        findings.append(("LAYER_DEPS", 0, "layer-dag",
                         "adjacency table invalid: " + problem))
    seen_dirs = set()
    for fm in files:
        d = src_dir_of(fm.posix)
        if d is None:
            continue
        if d not in seen_dirs:
            seen_dirs.add(d)
            if d not in table:
                findings.append(
                    (fm.rel_path, 1, "layer-unknown",
                     "src/%s/ has no entry in the layer DAG; add one to "
                     "LAYER_DEPS (tools/dhl_analyze.py) stating what it "
                     "may depend on" % d))
        if d not in table:
            continue
        for line, target in fm.includes:
            tgt = include_target_dir(target)
            if tgt is None:
                continue
            if tgt in FRONTEND_DIRS:
                findings.append(
                    (fm.rel_path, line, "layer-dag",
                     "src/%s/ must not include front-end header %r "
                     "(bench/, tools/ and examples/ sit outside the "
                     "layer DAG and depend on src/, never the reverse)"
                     % (d, target)))
            elif tgt in table and tgt != d and tgt not in table[d]:
                findings.append(
                    (fm.rel_path, line, "layer-dag",
                     "src/%s/ may not depend on src/%s/ (edge absent "
                     "from the layer DAG; allowed: %s)"
                     % (d, tgt, ", ".join(sorted(table[d])) or "nothing")))
    return findings


def build_class_registry(files):
    """Attach method bodies (qualified defs from any file + in-class
    inline defs) to their class models; merge same-named classes by
    (name) for body attachment, keyed per declaring file for member
    checks.  Returns the list of all class models."""
    by_name = {}
    all_classes = []
    for fm in files:
        for cls in fm.classes:
            all_classes.append(cls)
            by_name.setdefault(cls.name, []).append(cls)

    for fm in files:
        if src_dir_of(fm.posix) is None:
            continue
        for cls_name, _method, params, body in collect_method_bodies(
                fm.masked):
            side = side_of(params, body)
            if side is None:
                continue
            for cls in by_name.get(cls_name, ()):
                (cls.save_bodies if side == "save"
                 else cls.restore_bodies).append(body)
    for fm in files:
        if src_dir_of(fm.posix) is None:
            continue
        for cls in fm.classes:
            for _name, _method, params, body in collect_inline_bodies(
                    fm.masked, cls):
                side = side_of(params, body)
                if side is None:
                    continue
                (cls.save_bodies if side == "save"
                 else cls.restore_bodies).append(body)
    return all_classes


def _raw_side_bodies(files, cls_names):
    """Unmasked save/restore bodies per class name (for key literals)."""
    save, restore = {}, {}
    for fm in files:
        if src_dir_of(fm.posix) is None:
            continue
        for cls_name, _method, params, body in collect_method_bodies(
                fm.masked):
            if cls_name not in cls_names:
                continue
            side = side_of(params, body)
            if side is None:
                continue
            # Re-extract the same span from the raw text: find the body
            # by position.  Cheaper: regex the raw text once per class.
            (save if side == "save" else restore).setdefault(
                cls_name, []).append(body)
    return save, restore


def check_snapshots(files):
    """A2/A3/A4 over every snapshot-protocol class in src/."""
    findings = []
    classes = build_class_registry(files)
    for cls in classes:
        if src_dir_of(cls.rel_path.replace(os.sep, "/")) is None:
            continue
        if not cls.save_bodies or not cls.restore_bodies:
            continue
        save_text = "\n".join(cls.save_bodies)
        restore_text = "\n".join(cls.restore_bodies)

        member_names = {name for name, _t, _l in cls.members}
        for name, _type_text, line in cls.members:
            if name in cls.transients:
                continue
            in_save = re.search(r"\b%s\b" % re.escape(name), save_text)
            in_restore = re.search(r"\b%s\b" % re.escape(name),
                                   restore_text)
            if in_save and in_restore:
                continue
            missing = ("save and restore sides"
                       if not in_save and not in_restore
                       else ("save side" if not in_save
                             else "restore side"))
            findings.append(
                (cls.rel_path, line, "snapshot-coverage",
                 "%s::%s is not referenced on the %s of the snapshot "
                 "protocol; serialise it or annotate it "
                 "'// dhl-analyze: transient(%s): <why>'"
                 % (cls.name, name, missing, name)))
        for name, line in sorted(cls.transients.items()):
            if name not in member_names:
                findings.append(
                    (cls.rel_path, line, "snapshot-transient",
                     "stale transient annotation: %s::%s is not a "
                     "data member" % (cls.name, name)))
    return findings


def check_snapshot_keys(files):
    """A3: literal put keys == literal get/has keys, per class.  Key
    literals live in string literals, which the masked text blanks, so
    this pass re-walks the raw text using the masked text's method
    spans."""
    findings = []
    # Build (class -> side -> raw bodies) by re-running the method scan
    # on masked text but slicing bodies out of the *raw* text.
    sides = {}
    lines = {}
    for fm in files:
        if src_dir_of(fm.posix) is None:
            continue
        for m in METHOD_DEF_RE.finditer(fm.masked):
            params, body, found = _param_and_body(fm.masked, m.end() - 1)
            if not found:
                continue
            side = side_of(params, body)
            if side is None:
                continue
            # Locate the same body span in the raw text.
            open_idx = fm.masked.find("{", m.end() - 1)
            # _param_and_body already proved the brace exists and
            # matches; recompute its span for the raw slice.
            depth = 0
            i = fm.masked.find("(", m.end() - 1)
            while True:
                if fm.masked[i] == "(":
                    depth += 1
                elif fm.masked[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            open_idx = fm.masked.find("{", i)
            close = match_brace(fm.masked, open_idx)
            raw_body = fm.text[open_idx + 1:close]
            entry = sides.setdefault(m.group(1), {"save": set(),
                                                  "restore": set()})
            if side == "save":
                entry["save"].update(PUT_KEY_RE.findall(raw_body))
            else:
                entry["restore"].update(GET_KEY_RE.findall(raw_body))
            lines.setdefault(m.group(1), (fm.rel_path,
                                          line_of(fm.masked, m.start())))
    for cls_name, entry in sorted(sides.items()):
        if not entry["save"] or not entry["restore"]:
            continue
        rel, line = lines[cls_name]
        for key in sorted(entry["save"] - entry["restore"]):
            findings.append(
                (rel, line, "snapshot-keys",
                 "%s writes snapshot key %r that its restore side never "
                 "reads" % (cls_name, key)))
        for key in sorted(entry["restore"] - entry["save"]):
            findings.append(
                (rel, line, "snapshot-keys",
                 "%s reads snapshot key %r that its save side never "
                 "writes" % (cls_name, key)))
    return findings


def _member_types_for_file(fm, by_name):
    """identifier -> set of declared type texts visible in one cpp:
    members of every class that defines a method in this file or is
    declared in it, plus file-local unordered declarations."""
    types = {}

    def add(name, type_text):
        types.setdefault(name, set()).add(type_text)

    class_names = {m.group(1)
                   for m in METHOD_DEF_RE.finditer(fm.masked)}
    for cls in fm.classes:
        class_names.add(cls.name)
    for cls_name in class_names:
        for cls in by_name.get(cls_name, ()):
            for name, type_text, _line in cls.members:
                add(name, type_text)
    for m in UNORDERED_DECL_RE.finditer(fm.masked):
        add(m.group(2), m.group(1))
    return types


def check_hazards(files):
    """A5/A6/A7 over src/."""
    findings = []
    by_name = {}
    for fm in files:
        for cls in fm.classes:
            by_name.setdefault(cls.name, []).append(cls)

    for fm in files:
        if src_dir_of(fm.posix) is None:
            continue
        types = _member_types_for_file(fm, by_name)

        for m in RANGE_FOR_RE.finditer(fm.masked):
            parts = _split_range_for(fm.masked, m.start())
            if parts is None:
                continue
            expr, body, _hdr_end = parts
            if not _expr_is_unordered(expr, types):
                continue
            why = _body_is_order_dependent(body)
            if why:
                findings.append(
                    (fm.rel_path, line_of(fm.masked, m.start()),
                     "unordered-iteration",
                     "range-for over unordered container %r %s; hash "
                     "order is not deterministic state — collect keys, "
                     "sort, then apply" % (expr.strip(), why)))
        for m in ITER_FOR_RE.finditer(fm.masked):
            if not _expr_is_unordered(m.group(1), types):
                continue
            brace = fm.masked.find("{", m.end())
            semi = fm.masked.find(";", fm.masked.find(")", m.end()))
            if brace < 0:
                continue
            close = match_brace(fm.masked, brace)
            body = fm.masked[brace + 1:close] if close > 0 else ""
            why = _body_is_order_dependent(body)
            del semi
            if why:
                findings.append(
                    (fm.rel_path, line_of(fm.masked, m.start()),
                     "unordered-iteration",
                     "iterator loop over unordered container %r %s; "
                     "hash order is not deterministic state"
                     % (m.group(1), why)))

        if fm.posix not in RNG_ALLOWLIST:
            for m in RNG_LITERAL_RE.finditer(fm.masked):
                findings.append(
                    (fm.rel_path, line_of(fm.masked, m.start()),
                     "literal-seed",
                     "Rng constructed from an integer literal; streams "
                     "must flow through deriveSeed(base, stream) so "
                     "they stay decorrelated (common/random.hpp)"))

        for m in POINTER_KEY_RE.finditer(fm.masked):
            findings.append(
                (fm.rel_path, line_of(fm.masked, m.start()),
                 "pointer-key",
                 "pointer-valued key in an ordered container: "
                 "iteration order would be allocation order, which no "
                 "two runs share — key by a stable id instead"))

        if fm.posix not in RAW_THREADING_ALLOWLIST:
            for m in RAW_THREADING_RE.finditer(fm.masked):
                findings.append(
                    (fm.rel_path, line_of(fm.masked, m.start()),
                     "raw-threading",
                     "%s in library code; use common/thread_pool.hpp "
                     "(ThreadPool) or sim/shard.hpp (ShardGroup)"
                     % m.group(0)))
    return findings


def analyze_files(files):
    findings = []
    findings.extend(check_layers(files))
    findings.extend(check_snapshots(files))
    findings.extend(check_snapshot_keys(files))
    findings.extend(check_hazards(files))
    findings.sort(key=lambda f: (f[0], f[1], f[2]))
    return findings


def analyze_tree(root):
    return analyze_files(load_tree(root))


# ---------------------------------------------------------------------------
# --dot: the include graph as a CI artifact.
# ---------------------------------------------------------------------------

def dot_graph(files, table=None):
    """Directory-level include digraph: src/ layers as boxes placed by
    topological depth, front-end trees dashed, violating edges red."""
    table = LAYER_DEPS if table is None else table
    edges = {}
    for fm in files:
        parts = fm.posix.split("/")
        if parts[0] in FRONTEND_DIRS:
            src = parts[0]
        else:
            src = src_dir_of(fm.posix)
            if src is None:
                continue
        for _line, target in fm.includes:
            tgt = include_target_dir(target)
            if tgt is None or tgt == src:
                continue
            if tgt not in table and tgt not in FRONTEND_DIRS:
                continue
            ok = (src in FRONTEND_DIRS or
                  (tgt in table.get(src, set())))
            key = (src, tgt)
            edges[key] = edges.get(key, True) and ok

    depth = {}

    def depth_of(d):
        if d not in table:
            return 0
        if d not in depth:
            depth[d] = 1 + max((depth_of(x) for x in table[d]
                                if x in table), default=-1)
        return depth[d]

    out = ["digraph dhl_includes {", "  rankdir=BT;",
           '  node [shape=box, fontname="Helvetica"];']
    by_depth = {}
    for d in table:
        by_depth.setdefault(depth_of(d), []).append(d)
    for level in sorted(by_depth):
        out.append("  { rank=same; %s }"
                   % " ".join('"%s";' % d for d in sorted(by_depth[level])))
    for d in FRONTEND_DIRS:
        out.append('  "%s" [style=dashed];' % d)
    for (src, tgt), ok in sorted(edges.items()):
        attr = "" if ok else ' [color=red, penwidth=2]'
        out.append('  "%s" -> "%s"%s;' % (src, tgt, attr))
    out.append("}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Self-test: fixture trees per rule family, written to a tempdir and
# analyzed with the production entry points.
# ---------------------------------------------------------------------------

def _write_tree(root, spec):
    for rel, text in spec.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


def _rules(findings):
    return sorted({f[2] for f in findings})


SNAPSHOT_OK_FIXTURE = {
    "src/sim/gadget.hpp": """\
class Gadget {
  public:
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
  private:
    double position_;
    std::uint64_t trips_ = 0;
    // dhl-analyze: transient(scratch_, helper_): rebuilt by recompute()
    std::vector<double> scratch_;
    Helper *helper_ = nullptr;
};
""",
    "src/sim/gadget.cpp": """\
void Gadget::saveState(sim::SnapshotWriter &w) const {
    w.putDouble("position", position_);
    w.putU64("trips", trips_);
}
void Gadget::restoreState(sim::SnapshotReader &r) {
    position_ = r.getDouble("position");
    trips_ = r.getU64("trips");
}
""",
}

SNAPSHOT_BAD_FIXTURE = {
    "src/sim/gadget.hpp": """\
class Gadget {
  public:
    void saveState(sim::SnapshotWriter &w) const;
    void restoreState(sim::SnapshotReader &r);
  private:
    double position_;
    std::uint64_t trips_ = 0;
    double forgotten_field_;
    // dhl-analyze: transient(ghost_): annotation without a member
};
""",
    "src/sim/gadget.cpp": """\
void Gadget::saveState(sim::SnapshotWriter &w) const {
    w.putDouble("position", position_);
    w.putU64("trips", trips_);
    w.putU64("write_only", trips_);
}
void Gadget::restoreState(sim::SnapshotReader &r) {
    position_ = r.getDouble("position");
    trips_ = r.getU64("trips");
}
""",
}

HAZARD_OK_FIXTURE = {
    "src/dhl/widget.cpp": """\
#include "common/random.hpp"
struct Widget {
    std::unordered_map<std::uint32_t, double> wear_;
    void snapshotSorted(sim::SnapshotWriter &w) const;
    double total() const;
};
void Widget::snapshotSorted(sim::SnapshotWriter &w) const {
    std::vector<std::uint32_t> ids;
    for (const auto &[id, v] : wear_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint32_t id : ids)
        w.putDouble("wear", wear_.at(id));
}
double makeStream(std::uint64_t base) {
    Rng rng(deriveSeed(base, 7));
    std::map<std::uint32_t, int> by_id;
    return rng.uniform();
}
""",
}

HAZARD_BAD_FIXTURE = {
    "src/dhl/widget.cpp": """\
#include "common/random.hpp"
struct Widget {
    std::unordered_map<std::uint32_t, double> wear_;
    double total() const;
};
double Widget::total() const {
    double sum = 0.0;
    for (const auto &[id, v] : wear_)
        sum += v;
    return sum;
}
double roll() {
    Rng rng(42);
    std::map<Widget *, int> by_ptr;
    return rng.uniform();
}
void spin() {
    std::mutex m;
    std::thread t([] {});
    t.join();
}
""",
}


def self_test():
    failures = []
    checks = [0]

    def check(name, cond):
        checks[0] += 1
        if not cond:
            failures.append(name)

    # ---- the production table is itself valid ------------------------
    check("table valid", validate_layer_table(LAYER_DEPS) == [])
    check("table cycle detected",
          validate_layer_table({"a": {"b"}, "b": {"a"}}) != [])
    check("table unknown dep detected",
          any("unknown" in p
              for p in validate_layer_table({"a": {"zzz"}})))

    # ---- include target resolution ----------------------------------
    check("target plain", include_target_dir("common/random.hpp")
          == "common")
    check("target relative", include_target_dir("../te/fairness.hpp")
          == "te")
    check("target local", include_target_dir("bar.hpp") is None)

    # ---- member extraction on tricky declarations --------------------
    masked = mask_comments(SNAPSHOT_OK_FIXTURE["src/sim/gadget.hpp"])
    cls = extract_classes("src/sim/gadget.hpp",
                          SNAPSHOT_OK_FIXTURE["src/sim/gadget.hpp"],
                          masked)[0]
    names = [m[0] for m in cls.members]
    check("members found",
          names == ["position_", "trips_", "scratch_", "helper_"])
    check("transients parsed",
          set(cls.transients) == {"scratch_", "helper_"})
    tricky = (
        "class T {\n"
        "  public:\n"
        "    std::size_t numShards() const { return parts_.size(); }\n"
        "    void run(std::size_t n = 0);\n"
        "  private:\n"
        "    static constexpr int kChunk = 8;\n"
        "    using Chunk = std::array<int, 4>;\n"
        "    struct Nested { double inner_; };\n"
        "    std::unordered_map<int, double> by_id_;\n"
        "    double state_[4];\n"
        "    stats::Counter *ctr_ = nullptr;\n"
        "    faults::FaultConfig faults{};\n"
        "};\n")
    cls2 = extract_classes("src/sim/t.hpp", tricky,
                           mask_comments(tricky))[0]
    names2 = [m[0] for m in cls2.members]
    check("tricky members",
          names2 == ["by_id_", "state_", "ctr_", "faults"])
    check("nested struct member not attributed",
          "inner_" not in names2)

    # ---- fixture pairs, one per rule family --------------------------
    with tempfile.TemporaryDirectory() as tmp:
        # A1 layer DAG, clean tree.
        _write_tree(os.path.join(tmp, "dag_ok"), {
            "src/dhl/track.cpp": '#include "common/logging.hpp"\n'
                                 '#include "sim/simulator.hpp"\n',
            "src/serve/s.cpp": '#include "te/controller.hpp"\n'
                               '#include "ops/dispatcher.hpp"\n',
            "src/plan/p.cpp": '#include "cost/cost_model.hpp"\n'
                              '#include "exp/experiment_runner.hpp"\n',
            "tools/cli.cpp": '#include "te/controller.hpp"\n',
        })
        f = analyze_tree(os.path.join(tmp, "dag_ok"))
        check("dag ok clean", f == [])

        # A1 violations: an upward edge, a widened te fence (the
        # inbound direction), and a front-end reach-out.
        _write_tree(os.path.join(tmp, "dag_bad"), {
            "src/physics/lim.cpp": '#include "dhl/fleet.hpp"\n',
            "src/dhl/sched.cpp": '#include "te/controller.hpp"\n',
            "src/serve/s.cpp": '#include "bench/bench_util.hpp"\n',
            "src/ops/d.cpp": '#include <tools/cli_helpers.hpp>\n',
            "src/plan/p.cpp": '#include "serve/admission.hpp"\n',
            "src/plan/q.cpp": '#include "te/controller.hpp"\n',
        })
        f = analyze_tree(os.path.join(tmp, "dag_bad"))
        check("dag bad fires", _rules(f) == ["layer-dag"])
        check("dag bad count", len(f) == 6)
        check("dag upward edge",
              any("physics" in m for _p, _l, _r, m in f))
        check("dag te fence",
              any(p.endswith("sched.cpp") for p, _l, _r, m in f))
        check("dag plan fence",
              sum(1 for p, _l, _r, m in f
                  if "/plan/" in p.replace(os.sep, "/")) == 2)

        # A1 unknown directory.
        _write_tree(os.path.join(tmp, "dag_unknown"), {
            "src/widgets/w.cpp": '#include "common/logging.hpp"\n',
        })
        f = analyze_tree(os.path.join(tmp, "dag_unknown"))
        check("dag unknown dir", _rules(f) == ["layer-unknown"])

        # A2/A3/A4 snapshot coverage.
        _write_tree(os.path.join(tmp, "snap_ok"), SNAPSHOT_OK_FIXTURE)
        f = analyze_tree(os.path.join(tmp, "snap_ok"))
        check("snapshot ok clean", f == [])

        _write_tree(os.path.join(tmp, "snap_bad"), SNAPSHOT_BAD_FIXTURE)
        f = analyze_tree(os.path.join(tmp, "snap_bad"))
        check("snapshot bad fires",
              _rules(f) == ["snapshot-coverage", "snapshot-keys",
                            "snapshot-transient"])
        check("snapshot bad member",
              any("forgotten_field_" in m for _p, _l, _r, m in f))
        check("snapshot bad key",
              any("write_only" in m for _p, _l, _r, m in f))
        check("snapshot bad stale",
              any("ghost_" in m for _p, _l, _r, m in f))

        # A2: a member restored but never saved is one-sided.
        _write_tree(os.path.join(tmp, "snap_oneside"), {
            "src/sim/g.hpp": SNAPSHOT_OK_FIXTURE["src/sim/gadget.hpp"],
            "src/sim/g.cpp": """\
void Gadget::saveState(sim::SnapshotWriter &w) const {
    w.putDouble("position", position_);
}
void Gadget::restoreState(sim::SnapshotReader &r) {
    position_ = r.getDouble("position");
    trips_ = r.getU64("trips");
}
""",
        })
        f = analyze_tree(os.path.join(tmp, "snap_oneside"))
        check("snapshot one-sided member",
              any(r == "snapshot-coverage" and "save side" in m
                  for _p, _l, r, m in f))
        check("snapshot one-sided key",
              any(r == "snapshot-keys" and "trips" in m
                  for _p, _l, r, m in f))

        # A2: checkpoint/restore via *constructed* writer/reader (the
        # ServingSim shape) is detected too.
        _write_tree(os.path.join(tmp, "snap_ctor"), {
            "src/serve/m.hpp": """\
class Mini {
  public:
    void checkpoint(std::ostream &os) const;
    void restore(std::istream &is);
  private:
    std::uint64_t epochs_ = 0;
    double hidden_;
};
""",
            "src/serve/m.cpp": """\
void Mini::checkpoint(std::ostream &os) const {
    sim::SnapshotWriter w(os);
    w.putU64("epochs", epochs_);
}
void Mini::restore(std::istream &is) {
    sim::SnapshotReader r(is);
    epochs_ = r.getU64("epochs");
}
""",
        })
        f = analyze_tree(os.path.join(tmp, "snap_ctor"))
        check("snapshot ctor-detected",
              any(r == "snapshot-coverage" and "hidden_" in m
                  for _p, _l, r, m in f))

        # A5/A6/A7 hazards.
        _write_tree(os.path.join(tmp, "haz_ok"), HAZARD_OK_FIXTURE)
        f = analyze_tree(os.path.join(tmp, "haz_ok"))
        check("hazard ok clean", f == [])

        _write_tree(os.path.join(tmp, "haz_bad"), HAZARD_BAD_FIXTURE)
        f = analyze_tree(os.path.join(tmp, "haz_bad"))
        check("hazard bad fires",
              _rules(f) == ["literal-seed", "pointer-key",
                            "raw-threading", "unordered-iteration"])
        check("hazard raw-threading both primitives",
              sum(1 for _p, _l, r, _m in f if r == "raw-threading") == 2)

        # A8 allowlist: the concurrency layer itself may use the
        # primitives; front-end code is outside the rule entirely.
        _write_tree(os.path.join(tmp, "haz_pool"), {
            "src/common/thread_pool.cpp": "std::thread w; std::mutex m;\n",
            "src/sim/shard.cpp": "std::mutex m;\n",
            "bench/b2.cpp": "std::thread t(run);\n",
        })
        f = analyze_tree(os.path.join(tmp, "haz_pool"))
        check("raw-threading allowlist", f == [])

        # A5: iterator-style loop, and snapshot writes in hash order.
        _write_tree(os.path.join(tmp, "haz_iter"), {
            "src/faults/f.cpp": """\
struct F { std::unordered_map<int, double> ends_; };
void dump(F &f, sim::SnapshotWriter &w) {
    for (auto it = f.ends_.begin(); it != f.ends_.end(); ++it) {
        w.putDouble("end", it->second);
    }
}
""",
        })
        f = analyze_tree(os.path.join(tmp, "haz_iter"))
        check("hazard iterator loop",
              _rules(f) == ["unordered-iteration"])

        # A6 stays quiet on derived seeds and on the front-end.
        _write_tree(os.path.join(tmp, "haz_front"), {
            "bench/b.cpp": "Rng rng(42);\n",
            "src/common/random.hpp": "explicit Rng(std::uint64_t seed"
                                     " = 0x9e3779b97f4a7c15ull);\n",
        })
        f = analyze_tree(os.path.join(tmp, "haz_front"))
        check("literal-seed allowlist", f == [])

        # --dot smoke: violations arrive red, ranks exist.
        files = load_tree(os.path.join(tmp, "dag_bad"))
        dot = dot_graph(files)
        check("dot digraph", dot.startswith("digraph"))
        check("dot red edge", "color=red" in dot)
        check("dot rank", "rank=same" in dot)

    # ---- the production tree, if we are inside the repo --------------
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if os.path.isdir(os.path.join(repo, "src")):
        f = analyze_tree(repo)
        check("repo clean", f == [])
        if f:
            for rel, line, rule, msg in f[:25]:
                print("  repo finding: %s:%d: [%s] %s"
                      % (rel, line, rule, msg))

    if failures:
        for name in failures:
            print("SELF-TEST FAIL: %s" % name)
        return 1
    print("dhl_analyze self-test: %d checks passed" % checks[0])
    return 0


# ---------------------------------------------------------------------------

def dump_model(files):
    classes = build_class_registry(files)
    for cls in classes:
        if not cls.save_bodies or not cls.restore_bodies:
            continue
        print("%s (%s:%d)" % (cls.name, cls.rel_path, cls.line))
        save_text = "\n".join(cls.save_bodies)
        restore_text = "\n".join(cls.restore_bodies)
        for name, type_text, line in cls.members:
            tag = "covered"
            if name in cls.transients:
                tag = "transient"
            elif not re.search(r"\b%s\b" % re.escape(name), save_text):
                tag = "MISSING(save)"
            elif not re.search(r"\b%s\b" % re.escape(name),
                               restore_text):
                tag = "MISSING(restore)"
            print("  %-28s %-16s %s" % (name, tag, type_text[:60]))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent)")
    parser.add_argument("--dot", default=None, metavar="FILE",
                        help="write the directory-level include graph "
                             "as Graphviz dot")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture tests and exit")
    parser.add_argument("--dump-model", action="store_true",
                        help="print the snapshot-class model and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = load_tree(root)

    if args.dump_model:
        dump_model(files)
        return 0

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(dot_graph(files))
        print("dhl_analyze: include graph -> %s" % args.dot)

    findings = analyze_files(files)
    for rel, line, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, line, rule, msg))
    if findings:
        print("dhl_analyze: %d finding(s)" % len(findings))
        return 1
    print("dhl_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
