#!/usr/bin/env python3
"""Repo-specific static-analysis gate for the DHL codebase.

Pure Python (no clang dependency) so it runs identically on developer
machines and in CI.  Enforces the invariants that the type system and
compiler cannot:

  R1  magnitude-literals   No raw ``* 1e9`` / ``/ 1e12``-style unit
                           conversions in src/ outside units.hpp and
                           quantity.hpp — use the named helpers
                           (units::toMegajoules, qty::petabytes, ...).
  R2  iostream-in-src      No ``std::cout`` / ``std::cerr`` in src/ —
                           library code reports through logging.hpp
                           (whose default sink is the one exemption);
                           only tools/, bench/ and examples/ print.
  R3  nondeterminism       No ``rand()`` / ``srand()`` / ``time(``
                           in src/ — the DES must be seed-reproducible
                           (use common/random.hpp Rng).
  R4  include-guards       Headers under src/ use the canonical
                           ``DHL_<PATH>_HPP`` guard so guards never
                           collide as the tree grows.

The whole-program rules that used to live here as R5-R8 (the ops/serve/
te layering fences and the raw-threading fence) migrated to
tools/dhl_analyze.py: the layering rules became one declarative layer
DAG (rule A1, LAYER_DEPS) checked against the real include graph, and
raw-threading became rule A8.  This tool keeps only the single-file
textual invariants.

Usage:
  tools/lint_dhl.py [--root DIR]     lint the repo (exit 1 on findings)
  tools/lint_dhl.py --self-test      run the rule unit tests
"""

import argparse
import os
import re
import sys

# Files allowed to spell out powers of ten: they *define* the unit and
# quantity helpers everything else must use.
MAGNITUDE_ALLOWLIST = {
    os.path.join("src", "common", "units.hpp"),
    os.path.join("src", "common", "quantity.hpp"),
}

# ``* 1e9`` / ``/ 1e15`` with a positive magnitude exponent.  Negative
# exponents (tolerances such as 1e-9) and bare scientific literals in
# comparisons are not unit conversions and stay legal.
MAGNITUDE_RE = re.compile(r"[*/]\s*1e(?:3|6|9|12|15)\b")

IOSTREAM_RE = re.compile(r"\bstd::c(?:out|err)\b")

# The logging implementation owns the default stderr sink.
IOSTREAM_ALLOWLIST = {os.path.join("src", "common", "logging.cpp")}

# rand()/srand()/time() calls.  Word-boundary + open paren so that
# identifiers like trip_time or travelTime( never match.
NONDETERMINISM_RE = re.compile(r"(?<![\w.])(?:s?rand|time)\s*\(")

GUARD_RE = re.compile(r"^#ifndef\s+(\S+)", re.MULTILINE)


def strip_comments(text):
    """Remove // and /* */ comments (string literals are left alone —
    none of the rules trigger inside the repo's strings)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def expected_guard(rel_path):
    """src/dhl/analytical.hpp -> DHL_DHL_ANALYTICAL_HPP (the leading
    src/ is dropped, the dhl:: project prefix is added)."""
    no_src = os.path.relpath(rel_path, "src")
    stem = os.path.splitext(no_src)[0]
    return "DHL_" + re.sub(r"[\\/.]", "_", stem).upper() + "_HPP"


def find_line(text, pos):
    return text.count("\n", 0, pos) + 1


def lint_text(rel_path, text):
    """Return a list of (rel_path, line, rule, message) findings for one
    file's contents.  Only src/ files get the library-code rules."""
    findings = []
    posix = rel_path.replace(os.sep, "/")
    in_src = posix.startswith("src/")
    if not in_src:
        return findings

    code = strip_comments(text)

    if rel_path not in MAGNITUDE_ALLOWLIST and posix not in MAGNITUDE_ALLOWLIST:
        for m in MAGNITUDE_RE.finditer(code):
            findings.append(
                (rel_path, find_line(code, m.start()), "magnitude-literals",
                 "raw magnitude conversion %r; use a units::/qty:: helper"
                 % m.group(0).strip()))

    if rel_path not in IOSTREAM_ALLOWLIST:
        for m in IOSTREAM_RE.finditer(code):
            findings.append(
                (rel_path, find_line(code, m.start()), "iostream-in-src",
                 "%s in library code; use common/logging.hpp"
                 % m.group(0)))

    for m in NONDETERMINISM_RE.finditer(code):
        findings.append(
            (rel_path, find_line(code, m.start()), "nondeterminism",
             "%s) breaks seed-reproducibility; use dhl::Rng"
             % m.group(0).rstrip("(").strip()))

    if posix.endswith(".hpp"):
        g = GUARD_RE.search(code)
        want = expected_guard(rel_path)
        if g is None:
            findings.append((rel_path, 1, "include-guards",
                             "missing include guard (expected %s)" % want))
        elif g.group(1) != want:
            findings.append(
                (rel_path, find_line(code, g.start()), "include-guards",
                 "guard %s should be %s" % (g.group(1), want)))
    return findings


def lint_tree(root):
    findings = []
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith((".hpp", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                findings.extend(lint_text(rel, fh.read()))
    return findings


# ---------------------------------------------------------------------------
# Self-test: pin each rule's fire/no-fire behaviour.
# ---------------------------------------------------------------------------

def self_test():
    failures = []
    checks = [0]

    def check(name, cond):
        checks[0] += 1
        if not cond:
            failures.append(name)

    def rules_of(rel, text):
        return {f[2] for f in lint_text(rel, text)}

    hdr = "#ifndef DHL_FOO_BAR_HPP\n#define DHL_FOO_BAR_HPP\n#endif\n"
    cpp = os.path.join("src", "foo", "bar.cpp")
    hpp = os.path.join("src", "foo", "bar.hpp")

    # R1 fires on magnitude conversions, in either direction.
    check("R1 multiply",
          "magnitude-literals" in rules_of(cpp, "double x = b * 1e9;\n"))
    check("R1 divide",
          "magnitude-literals" in rules_of(cpp, "double x = j / 1e6;\n"))
    # ...but not on tolerances, comments, or the allow-listed files.
    check("R1 tolerance",
          not rules_of(cpp, "bool ok = err < 1e-9 * 1e-12;\n"))
    check("R1 comment",
          not rules_of(cpp, "// historical: bytes * 1e9\nint x;\n"))
    check("R1 allowlist",
          "magnitude-literals" not in rules_of(
              os.path.join("src", "common", "units.hpp"),
              "constexpr double giga(double n) { return n * 1e9; }\n"))
    check("R1 bare literal",
          not rules_of(cpp, "double cap = 8e12; if (cap > 1e9) cap = 0;\n"))

    # R2 fires only under src/.
    check("R2 cout", "iostream-in-src" in rules_of(cpp, "std::cout << 1;\n"))
    check("R2 cerr", "iostream-in-src" in rules_of(cpp, "std::cerr << 1;\n"))
    check("R2 bench exempt",
          not lint_text(os.path.join("bench", "x.cpp"), "std::cout << 1;\n"))
    check("R2 logging sink exempt",
          "iostream-in-src" not in rules_of(
              os.path.join("src", "common", "logging.cpp"),
              "std::cerr << tag;\n"))

    # R3 fires on the C randomness/time calls, not on lookalikes.
    check("R3 rand", "nondeterminism" in rules_of(cpp, "int r = rand();\n"))
    check("R3 srand", "nondeterminism" in rules_of(cpp, "srand(42);\n"))
    check("R3 time", "nondeterminism" in rules_of(cpp, "time(nullptr);\n"))
    check("R3 travelTime",
          not rules_of(cpp, "double t = travelTime(1, 2, 3, m);\n"))
    check("R3 trip_time", not rules_of(cpp, "double t = trip_time(0);\n"))
    check("R3 member", not rules_of(cpp, "double t = sim.time();\n"))

    # R4 guard naming.
    check("R4 good", "include-guards" not in rules_of(hpp, hdr))
    check("R4 wrong name",
          "include-guards" in rules_of(
              hpp, "#ifndef BAR_HPP\n#define BAR_HPP\n#endif\n"))
    check("R4 missing", "include-guards" in rules_of(hpp, "int x;\n"))
    check("R4 expected name",
          expected_guard(hpp) == "DHL_FOO_BAR_HPP")

    # R5-R8 migrated to tools/dhl_analyze.py (layer DAG rule A1 and
    # raw-threading rule A8); this tool no longer fires on includes or
    # threading primitives.
    check("no layering rule here",
          not rules_of(os.path.join("src", "ops", "dispatcher.cpp"),
                       '#include "bench/bench_util.hpp"\n'))
    check("no threading rule here",
          not rules_of(cpp, "std::thread t(run);\n"))

    if failures:
        for name in failures:
            print("SELF-TEST FAIL: %s" % name)
        return 1
    print("lint_dhl self-test: %d checks passed" % checks[0])
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_tree(root)
    for rel, line, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, line, rule, msg))
    if findings:
        print("lint_dhl: %d finding(s)" % len(findings))
        return 1
    print("lint_dhl: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
