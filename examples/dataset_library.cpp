/**
 * @file
 * Example: operating a DHL-backed dataset library.  Ties together the
 * placement layer (LRU cart cache over a backing disk pool), a
 * Zipf-popular staging workload, the availability model, and the RAID
 * protection story — the day-2 operations view of the paper's ML use
 * case.
 *
 * Run: ./build/examples/dataset_library
 */

#include <iostream>
#include <string>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/placement.hpp"
#include "dhl/reliability.hpp"
#include "storage/raid.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

int
main()
{
    const DhlConfig cfg = defaultConfig();

    //------------------------------------------------------------------
    // A month of Zipf-popular dataset staging through the cart cache.
    //------------------------------------------------------------------
    PlacementConfig pc;
    pc.cache_carts = 16;      // 4 TB x 16 = 4 PB of resident carts
    pc.backing_read_bw = 50e9; // disk pool feed
    CartCache cache(cfg, pc);

    Rng rng(7);
    ZipfTable zipf(12, 1.1); // 12 datasets, production-like skew
    double stage_time = 0.0, load_time = 0.0, energy = 0.0;
    const int accesses = 480; // ~16/day for a month
    for (int i = 0; i < accesses; ++i) {
        const auto rank = zipf.sample(rng);
        const double bytes =
            u::terabytes(300 + 150 * static_cast<double>(rank % 5));
        const auto a =
            cache.access("ds" + std::to_string(rank), bytes);
        stage_time += a.stage_time;
        load_time += a.load_time;
        energy += a.dhl_energy;
    }
    std::cout << "A month of dataset staging (" << accesses
              << " requests, 12 datasets, Zipf 1.1):\n"
              << "  hit rate:            "
              << u::formatSig(cache.hitRate() * 100, 3) << " % ("
              << cache.hits() << "/" << cache.accesses() << ")\n"
              << "  DHL shuttling time:  "
              << u::formatDuration(stage_time) << "\n"
              << "  backing-pool loads:  "
              << u::formatDuration(load_time)
              << " (what the cache saved us from paying every time)\n"
              << "  LIM energy:          " << u::formatEnergy(energy)
              << "\n\n";

    //------------------------------------------------------------------
    // Can the service sustain it?  Availability and cart rotation.
    //------------------------------------------------------------------
    AvailabilityModel availability(cfg);
    const double trips_per_hour =
        2.0 * static_cast<double>(accesses) * 2.0 / (30.0 * 24.0);
    const auto rep = availability.report(trips_per_hour);
    std::cout << "Service availability (LIMs, tube, stations in "
                 "series):\n"
              << "  system availability: "
              << u::formatSig(rep.system_availability * 100, 6) << " %\n"
              << "  downtime:            "
              << u::formatSig(rep.downtime_hours_per_year, 3)
              << " h/year\n"
              << "  carts in repair:     "
              << u::formatSig(rep.carts_in_repair_fraction * 100, 3)
              << " % of the fleet\n\n";

    //------------------------------------------------------------------
    // And is the data safe in flight?  RAID6 over each cart.
    //------------------------------------------------------------------
    storage::RaidConfig raid;
    raid.level = storage::RaidLevel::Raid6;
    raid.group_size = 8;
    storage::RaidModel protection(storage::referenceM2Ssd(),
                                  cfg.ssds_per_cart, raid);
    const double p_trip = 1e-4; // per-SSD per-trip failure
    std::cout << "In-flight protection (RAID6, 8-SSD groups):\n"
              << "  usable capacity:     "
              << u::formatBytes(protection.usableCapacity()) << " of "
              << u::formatBytes(protection.rawCapacity()) << " ("
              << u::formatSig(protection.capacityOverhead() * 100, 3)
              << " % parity)\n"
              << "  rebuild time:        "
              << u::formatDuration(protection.rebuildTime()) << "\n"
              << "  mean trips to loss:  "
              << u::formatSig(protection.meanTripsToDataLoss(p_trip), 3)
              << " at p=" << p_trip << "/SSD/trip\n";
    return 0;
}
