/**
 * @file
 * Example: a multi-stop DHL (Discussion §VI) serving three racks along
 * one 500 m tube.  Shows per-hop physics (short hops cannot reach
 * cruise speed and cost quadratically less energy), a delivery tour,
 * and the contention rules — a docking cart blocks through-traffic at
 * its stop.
 *
 * Run: ./build/examples/multistop_tour
 */

#include <iostream>

#include "common/units.hpp"
#include "dhl/multistop.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

int
main()
{
    MultiStopConfig cfg;
    cfg.stop_positions = {0.0, 150.0, 300.0, 500.0};
    MultiStopModel model(cfg);

    std::cout << "Multi-stop DHL: library at 0 m, racks at 150 / 300 / "
                 "500 m, cruise 200 m/s\n\n";

    // Per-hop physics.
    std::cout << "Hop metrics (undock + travel + dock):\n";
    for (StopId from = 0; from < model.numStops(); ++from) {
        for (StopId to = from + 1; to < model.numStops(); ++to) {
            const HopMetrics h = model.hop(from, to);
            std::cout << "  stop " << from << " -> " << to << ": "
                      << u::formatSig(h.distance.value(), 4)
                      << " m, peak "
                      << u::formatSig(h.peak_speed.value(), 4)
                      << " m/s, "
                      << u::formatSig(h.trip_time.value(), 3) << " s, "
                      << u::formatEnergy(h.energy) << "\n";
        }
    }

    // A delivery round: library -> rack1 -> rack2 -> rack3 -> library.
    const HopMetrics tour = model.tour({0, 1, 2, 3, 0});
    std::cout << "\nDelivery tour 0-1-2-3-0: "
              << u::formatSig(tour.distance.value(), 4) << " m, "
              << u::formatSig(tour.trip_time.value(), 4) << " s, "
              << u::formatEnergy(tour.energy) << "\n";

    // Contention: a cart docking at rack 1 blocks a through-shuttle to
    // rack 3 but not local traffic beyond it.
    sim::Simulator sim;
    MultiStopTrack track(sim, cfg);
    std::cout << "\nContention demo:\n";
    track.blockStop(1, 3.0); // docking at rack 1 for 3 s
    const auto through = track.reserveTransit(0, 3);
    std::cout << "  through-shuttle 0->3 with rack-1 docking in "
                 "progress departs at t="
              << u::formatSig(through.depart_time, 3)
              << " s (waits for the dock)\n";
    const auto local = track.reserveTransit(2, 3);
    std::cout << "  local shuttle 2->3 departs at t="
              << u::formatSig(local.depart_time, 3)
              << " s — but must also respect tube occupancy\n";

    // Parallel local hops on disjoint segments.
    sim::Simulator sim2;
    MultiStopTrack track2(sim2, cfg);
    const auto a = track2.reserveTransit(0, 1);
    const auto b = track2.reserveTransit(2, 3);
    std::cout << "  disjoint hops 0->1 and 2->3 depart together at t="
              << u::formatSig(a.depart_time, 3) << " / "
              << u::formatSig(b.depart_time, 3)
              << " s (one tube, two segments)\n";

    std::cout << "\nTotal LIM energy drawn in the demos: "
              << u::formatEnergy(track.totalEnergy() +
                                 track2.totalEnergy())
              << " across " << track.transits() + track2.transits()
              << " transits\n";
    return 0;
}
