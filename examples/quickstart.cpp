/**
 * @file
 * Quickstart: configure a data centre hyperloop, look at one launch,
 * move a dataset, and compare against optical networking — the whole
 * public API in ~60 lines.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <iostream>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/route.hpp"

using namespace dhl;
namespace u = dhl::units;

int
main()
{
    // 1. Configure a DHL.  The defaults are the paper's bold Table V
    //    row: 500 m track, 200 m/s, 32 x 8 TB M.2 SSDs per cart.
    core::DhlConfig cfg = core::defaultConfig();
    std::cout << "Configured " << cfg.label() << ": "
              << u::formatBytes(cfg.cartCapacity()) << " per cart, "
              << u::formatSig(u::toGrams(cfg.cartMass().value()), 3)
              << " g cart, " << cfg.limLength().value()
              << " m LIM\n\n";

    // 2. Closed-form: one launch between the endpoints.
    const core::AnalyticalModel model(cfg);
    const auto launch = model.launch();
    std::cout << "One launch:\n"
              << "  energy     " << u::formatEnergy(launch.energy) << "\n"
              << "  trip time  " << u::formatDuration(launch.trip_time)
              << "\n"
              << "  bandwidth  " << u::formatBandwidth(launch.bandwidth)
              << " (embodied)\n"
              << "  peak power " << u::formatPower(launch.peak_power)
              << "\n"
              << "  efficiency "
              << u::formatSig(launch.efficiency, 3) << " GB/J\n\n";

    // 3. Move a 2 PB dataset and compare with the optical network.
    const double dataset = u::petabytes(2);
    const auto bulk = model.bulk(dhl::qty::Bytes{dataset});
    std::cout << "Moving " << u::formatBytes(dataset) << ": "
              << bulk.loaded_trips << " carts, "
              << u::formatDuration(bulk.total_time) << ", "
              << u::formatEnergy(bulk.total_energy) << "\n";
    for (const char *route : {"A0", "C"}) {
        const auto cmp =
            model.compareBulk(dhl::qty::Bytes{dataset},
                              network::findRoute(route));
        std::cout << "  vs route " << route << ": "
                  << u::formatSig(cmp.time_speedup, 4) << "x faster, "
                  << u::formatSig(cmp.energy_reduction, 4)
                  << "x less energy\n";
    }

    // 4. The same transfer, cart by cart, on the event-driven
    //    simulator (it agrees with the closed form).
    core::DhlSimulation des(cfg);
    const auto run = des.runBulkTransfer(dataset);
    std::cout << "\nEvent-driven replay: " << run.launches
              << " launches, " << u::formatDuration(run.total_time)
              << ", " << u::formatEnergy(run.total_energy) << "\n";
    return 0;
}
