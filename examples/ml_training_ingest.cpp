/**
 * @file
 * Example: the paper's headline use case — feeding a DLRM training
 * cluster its 29 PB dataset.  Walks the Table VII analysis (iso-power
 * and iso-time) and then replays one epoch of ingestion on the
 * event-driven DHL with SSD reads and pipelined docking stations, the
 * way a production deployment would run it.
 *
 * Run: ./build/examples/ml_training_ingest
 */

#include <iostream>

#include "common/units.hpp"
#include "dhl/simulation.hpp"
#include "mlsim/campaign.hpp"
#include "mlsim/sweep.hpp"
#include "mlsim/training_sim.hpp"

using namespace dhl;
using namespace dhl::mlsim;
namespace u = dhl::units;

int
main()
{
    const TrainingWorkload workload = dlrmWorkload();
    std::cout << "Workload: " << workload.name << " — "
              << u::formatBytes(workload.dataset_bytes)
              << " ingested per iteration, "
              << u::formatDuration(workload.compute_time)
              << " compute\n\n";

    // --- Iso-power: what does 1 DHL's power buy each scheme? ---
    DhlComm dhl_comm(core::defaultConfig());
    TrainingSim dhl_sim(workload, dhl_comm);
    const double budget = dhl_comm.unitPower();
    const double dhl_time = dhl_sim.isoPower(budget).iter_time;
    std::cout << "Iso-power at " << u::formatPower(budget)
              << " (one DHL):\n"
              << "  DHL          " << u::formatDuration(dhl_time) << "\n";
    for (const auto &route : network::canonicalRoutes()) {
        OpticalComm net(route);
        TrainingSim sim(workload, net);
        const auto r = sim.isoPower(budget);
        std::cout << "  network " << route.name() << "   "
                  << u::formatDuration(r.iter_time) << "  ("
                  << u::formatSig(r.iter_time / dhl_time, 3)
                  << "x slower)\n";
    }

    // --- Iso-time: what power must each scheme burn to keep up? ---
    std::cout << "\nIso-time at " << u::formatDuration(dhl_time) << ":\n"
              << "  DHL          " << u::formatPower(budget) << "\n";
    for (const auto &route : network::canonicalRoutes()) {
        OpticalComm net(route);
        TrainingSim sim(workload, net);
        const double p = sim.powerForIterTime(dhl_time);
        std::cout << "  network " << route.name() << "   "
                  << u::formatPower(p) << "  ("
                  << u::formatSig(p / budget, 3) << "x more)\n";
    }

    // --- Scaling out: more tracks, like Figure 6's DHL curve. ---
    std::cout << "\nScaling out DHL tracks:\n";
    const auto series = sweepQuantised(dhl_sim, 8.0 * budget);
    for (const auto &pt : series.points) {
        std::cout << "  " << pt.units << " track(s), "
                  << u::formatPower(pt.power) << " -> "
                  << u::formatDuration(pt.iter_time) << " per iteration\n";
    }

    // --- Production-style replay: event-driven ingestion of one
    //     epoch-worth of carts with reads and pipelining.  A scaled
    //     1 PB slice keeps the example quick; the paper's linearity
    //     check lets us extrapolate. ---
    core::DhlConfig cfg = core::defaultConfig();
    cfg.track_mode = core::TrackMode::DualTrack;
    cfg.docking_stations = 4;
    core::DhlSimulation des(cfg);
    core::BulkRunOptions opts;
    opts.pipelined = true;
    opts.include_read_time = true;
    const double slice = u::petabytes(1);
    const auto run = des.runBulkTransfer(slice, opts);
    const double scale = workload.dataset_bytes / slice;
    std::cout << "\nEvent-driven replay of a "
              << u::formatBytes(slice) << " slice (dual track, 4 "
              << "stations, SSD reads):\n"
              << "  " << run.carts << " carts, " << run.launches
              << " launches, " << u::formatDuration(run.total_time)
              << ", " << u::formatEnergy(run.total_energy) << "\n"
              << "  linear extrapolation to 29 PB: "
              << u::formatDuration(run.total_time * scale)
              << " per epoch of ingestion\n";

    // --- The long game (§II-D3): the same dataset, appended monthly,
    //     re-staged for every new model over two years. ---
    CampaignConfig campaign;
    campaign.initial_dataset = workload.dataset_bytes;
    campaign.monthly_growth = u::petabytes(2);
    campaign.trainings_per_month = 4.0;
    campaign.months = 24;
    const auto report =
        CampaignModel(core::defaultConfig(),
                      network::findRoute("C")).run(campaign);
    std::cout << "\nTwo-year campaign (4 models/month, +2 PB/month):\n"
              << "  data staged:   " << u::formatBytes(report.total_bytes)
              << "\n"
              << "  DHL energy:    " << u::formatEnergy(report.dhl_energy)
              << " vs network C " << u::formatEnergy(report.net_energy)
              << " ("
              << u::formatSig(report.energyReduction(), 4)
              << "x less)\n"
              << "  energy saved:  "
              << u::formatEnergy(report.energySaved()) << " over the "
              << "campaign\n";
    return 0;
}
