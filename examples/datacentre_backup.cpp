/**
 * @file
 * Example: data centre bulk backups (paper §II-D2).  A day of
 * operations on a full fat-tree fabric where periodic multi-PB backup
 * bursts either (a) ride the shared network — squeezing foreground
 * traffic on every link they cross, simulated with the topology-level
 * max-min fair fabric simulator — or (b) ride a DHL, leaving the
 * fabric untouched.
 *
 * Run: ./build/examples/datacentre_backup
 */

#include <cstdint>
#include <functional>
#include <iostream>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/fabric_sim.hpp"
#include "network/transfer.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

/** One day of fabric traffic; returns foreground flow statistics. */
struct DayResult
{
    std::uint64_t fg_flows = 0;
    double fg_mean_duration = 0.0;
    double fg_max_duration = 0.0;
    double fabric_energy = 0.0;
};

DayResult
simulateDay(bool with_backups, double backup_size, int n_backups)
{
    sim::Simulator simulator;
    network::FabricSim fabric(simulator);
    Rng rng(2024);
    const double day = u::hours(24);

    // Foreground traffic: 100 GB cross-rack flows arriving every ~30 s
    // between random hosts.
    double fg_total = 0.0, fg_max = 0.0;
    std::uint64_t fg_flows = 0;
    std::function<void(double)> spawn_fg = [&](double at) {
        simulator.scheduleAt(at, [&, at] {
            if (at >= day)
                return;
            const auto &topo = fabric.topology();
            const int n = topo.numHosts();
            int a = static_cast<int>(rng.uniformInt(0, n - 1));
            int b;
            do {
                b = static_cast<int>(rng.uniformInt(0, n - 1));
            } while (b == a);
            fabric.startTransfer(topo.hostAddress(a),
                                 topo.hostAddress(b),
                                 u::gigabytes(100),
                                 [&](const network::FlowRecord &r) {
                                     fg_total += r.duration();
                                     fg_max = std::max(fg_max,
                                                       r.duration());
                                     ++fg_flows;
                                 });
            spawn_fg(at + rng.exponential(30.0));
        });
    };
    spawn_fg(rng.exponential(30.0));

    // Backup bursts: cross-aisle, so they transit the core.
    if (with_backups) {
        for (int i = 0; i < n_backups; ++i) {
            simulator.scheduleAt(i * day / n_backups + 1.0, [&] {
                fabric.startTransfer({0, 0, 0}, {1, 0, 0}, backup_size,
                                     nullptr);
            });
        }
    }
    simulator.runUntil(day);

    DayResult r;
    r.fg_flows = fg_flows;
    r.fg_mean_duration =
        fg_flows ? fg_total / static_cast<double>(fg_flows) : 0.0;
    r.fg_max_duration = fg_max;
    r.fabric_energy = fabric.flows().totalEnergy();
    return r;
}

} // namespace

int
main()
{
    const double backup_size = u::petabytes(2);
    const int n_backups = 4; // every 6 hours

    std::cout << "One simulated day on a 2-aisle fat tree (24 hosts), "
                 "100 GB foreground flows every ~30 s.\n\n";

    const DayResult quiet = simulateDay(false, backup_size, n_backups);
    std::cout << "Without backups on the fabric:\n"
              << "  foreground flows: " << quiet.fg_flows
              << ", mean " << u::formatDuration(quiet.fg_mean_duration)
              << ", worst " << u::formatDuration(quiet.fg_max_duration)
              << "\n  fabric energy: "
              << u::formatEnergy(quiet.fabric_energy) << "\n\n";

    const DayResult busy = simulateDay(true, backup_size, n_backups);
    std::cout << "With 4 x " << u::formatBytes(backup_size)
              << " backups riding the fabric:\n"
              << "  foreground flows: " << busy.fg_flows << ", mean "
              << u::formatDuration(busy.fg_mean_duration) << " ("
              << u::formatSig(busy.fg_mean_duration /
                                  quiet.fg_mean_duration, 3)
              << "x slower), worst "
              << u::formatDuration(busy.fg_max_duration) << "\n"
              << "  fabric energy: "
              << u::formatEnergy(busy.fabric_energy) << "\n\n";

    // (b) The same backups on a DHL never touch the fabric.
    core::DhlConfig cfg = core::defaultConfig();
    const core::AnalyticalModel dhl_model(cfg);
    const auto per_backup = dhl_model.bulk(dhl::qty::Bytes{backup_size});
    std::cout << "The DHL alternative (" << cfg.label() << "):\n"
              << "  per 2 PB backup: " << per_backup.loaded_trips
              << " carts, " << u::formatDuration(per_backup.total_time)
              << ", " << u::formatEnergy(per_backup.total_energy) << "\n"
              << "  all " << n_backups << " backups: "
              << u::formatDuration(n_backups * per_backup.total_time)
              << ", "
              << u::formatEnergy(n_backups * per_backup.total_energy)
              << "; foreground keeps its quiet-day latencies\n\n";

    // Head-to-head on the backup bytes alone (cross-aisle = route C).
    const network::TransferModel net(network::findRoute("C"));
    const auto net_backup = net.transfer(dhl::qty::Bytes{backup_size});
    std::cout << "Per-backup head-to-head (2 PB, cross-aisle):\n"
              << "  network C: " << u::formatDuration(net_backup.time)
              << ", " << u::formatEnergy(net_backup.energy) << "\n"
              << "  DHL:       "
              << u::formatDuration(per_backup.total_time) << ", "
              << u::formatEnergy(per_backup.total_energy) << "  ("
              << u::formatSig(net_backup.time / per_backup.total_time, 4)
              << "x faster, "
              << u::formatSig(
                     net_backup.energy / per_backup.total_energy, 4)
              << "x less energy)\n";
    return 0;
}
