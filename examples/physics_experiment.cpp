/**
 * @file
 * Example: experimental physics (paper §II-D1).  An LHC-style detector
 * produces a 150 TB/s burst for a few seconds per fill; the data is
 * buffered into DHL carts at the experiment and shuttled to an
 * off-site processing hall, instead of being aggressively filtered on
 * radiation-hardened ASICs or squeezed through the WAN.
 *
 * Run: ./build/examples/physics_experiment
 */

#include <cmath>
#include <iostream>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/transfer.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
namespace u = dhl::units;

int
main()
{
    // The burst: 4 seconds of unfiltered CMS-class detector output.
    const auto &lhc = storage::findDataset("LHC CMS Detector");
    const double burst_seconds = 4.0;
    const double burst_bytes = lhc.creation_rate * burst_seconds;
    std::cout << "Detector burst: "
              << u::formatBandwidth(lhc.creation_rate) << " for "
              << burst_seconds << " s = " << u::formatBytes(burst_bytes)
              << " of unfiltered data\n\n";

    // A long-haul DHL: 1 km from the experiment cavern to the
    // processing hall, big 512 TB carts, dual track for continuous
    // operation.
    core::DhlConfig cfg = core::makeConfig(300.0, 1000.0, 64);
    cfg.track_mode = core::TrackMode::DualTrack;
    cfg.docking_stations = 4;
    const core::AnalyticalModel model(cfg);

    const double carts_per_burst =
        std::ceil(burst_bytes / cfg.cartCapacity().value());
    std::cout << "DHL " << cfg.label() << ": "
              << u::formatBytes(cfg.cartCapacity())
              << " per cart -> " << carts_per_burst
              << " carts per burst\n";

    // How quickly can a burst's carts be cleared, pipelined?
    core::BulkOptions opts;
    opts.pipelined = true;
    const auto bulk = model.bulk(dhl::qty::Bytes{burst_bytes}, opts);
    std::cout << "  pipelined clear-out: "
              << u::formatDuration(bulk.total_time) << " ("
              << u::formatBandwidth(bulk.effective_bandwidth)
              << " effective), "
              << u::formatEnergy(bulk.total_energy) << "\n";

    // Sustainable rate: can the DHL keep up with repeated fills?
    const double fill_period = u::minutes(20);
    const double sustained = burst_bytes / fill_period;
    std::cout << "  one burst per "
              << u::formatDuration(fill_period) << " needs "
              << u::formatBandwidth(sustained)
              << " sustained; the pipeline sustains "
              << u::formatBandwidth(bulk.effective_bandwidth) << " -> "
              << (bulk.effective_bandwidth.value() > sustained
                      ? "keeps up"
                      : "falls behind")
              << "\n\n";

    // The WAN alternative: how many parallel 400 Gbit/s links to keep
    // up with the same sustained rate, and at what power?
    const network::TransferModel wan(network::findRoute("C"));
    const double links = wan.linksForTime(dhl::qty::Bytes{burst_bytes},
                                          dhl::qty::Seconds{fill_period});
    std::cout << "WAN alternative (route C): keeping up needs "
              << u::formatSig(links, 4) << " parallel 400 Gbit/s links "
              << "burning "
              << u::formatPower(links * wan.linkPower())
              << " continuously;\n  the DHL spends "
              << u::formatEnergy(bulk.total_energy) << " per burst ("
              << u::formatPower(bulk.total_energy.value() / fill_period)
              << " average)\n\n";

    // Event-driven replay of one burst's worth of carts (scaled to a
    // single cart-load per station to keep the example snappy).
    core::DhlSimulation des(cfg);
    core::BulkRunOptions run_opts;
    run_opts.pipelined = true;
    const auto run = des.runBulkTransfer(4.0 * cfg.cartCapacity().value(),
                                         run_opts);
    std::cout << "Event-driven replay (4 carts): "
              << u::formatDuration(run.total_time) << ", "
              << run.launches << " launches, "
              << u::formatEnergy(run.total_energy) << "\n";
    return 0;
}
