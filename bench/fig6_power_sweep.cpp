/**
 * @file
 * Experiment E6 — regenerates the paper's Figure 6: time per DLRM
 * training iteration (log scale) versus the communication power
 * budget, with quantised DHL series (one point per whole track) and
 * continuous network series for A0/A1/A2/B/C.
 *
 * Each series is one runner scenario (an independent model run); the
 * grid is evaluated across --jobs cores and emitted once from the
 * runner's result rows.  Output is a tidy series table (and CSV with
 * --csv) plus an ASCII sketch of the log-log plot.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "mlsim/sweep.hpp"

using namespace dhl;
using namespace dhl::mlsim;
namespace u = dhl::units;

namespace {

/** A crude log-log ASCII sketch of the series. */
void
sketch(const std::vector<SweepSeries> &series)
{
    const int width = 68, height = 20;
    double pmin = 1e300, pmax = 0, tmin = 1e300, tmax = 0;
    for (const auto &s : series) {
        for (const auto &pt : s.points) {
            pmin = std::min(pmin, pt.power);
            pmax = std::max(pmax, pt.power);
            tmin = std::min(tmin, pt.iter_time);
            tmax = std::max(tmax, pt.iter_time);
        }
    }
    std::vector<std::string> grid(
        height, std::string(static_cast<std::size_t>(width), ' '));
    // Series order: three DHL configurations, then networks A0..C.
    const char marks[] = {'D', 'd', 'h', '0', '1', '2', 'B', 'C', '*'};
    for (std::size_t si = 0; si < series.size(); ++si) {
        const char mark = marks[std::min<std::size_t>(si, 8)];
        for (const auto &pt : series[si].points) {
            const double fx = (std::log(pt.power) - std::log(pmin)) /
                              (std::log(pmax) - std::log(pmin));
            const double fy =
                (std::log(pt.iter_time) - std::log(tmin)) /
                (std::log(tmax) - std::log(tmin));
            const int x = static_cast<int>(fx * (width - 1));
            const int y =
                height - 1 - static_cast<int>(fy * (height - 1));
            grid[static_cast<std::size_t>(y)]
                [static_cast<std::size_t>(x)] = mark;
        }
    }
    std::cout << "\nASCII sketch (x: log power "
              << u::formatPower(pmin) << ".." << u::formatPower(pmax)
              << "; y: log time/iter " << cell(tmin, 3) << ".."
              << cell(tmax, 3) << " s)\n";
    std::cout << "Marks: D/d/h = DHL configurations, 0/1/2/B/C = "
                 "networks A0..C\n";
    for (const auto &row : grid)
        std::cout << "  |" << row << "\n";
    std::cout << "  +" << std::string(static_cast<std::size_t>(68), '-')
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("Figure 6",
                      "time per DLRM iteration vs communication power "
                      "budget");
    }

    const TrainingWorkload workload = dlrmWorkload();
    const double max_power = 40e3; // 40 kW x-range

    // DHL curves: the paper plots several DHL-X-Y-Z configurations.
    const std::vector<core::DhlConfig> dhl_cfgs = {
        core::makeConfig(200, 500, 32),  // the default
        core::makeConfig(100, 500, 32),  // slower, more efficient
        core::makeConfig(200, 500, 64),  // bigger carts
    };

    // One scenario per series; each writes its SweepSeries into its
    // own slot for the sketch below.
    std::vector<SweepSeries> series(
        dhl_cfgs.size() + network::canonicalRoutes().size());
    exp::Experiment fig6("fig6_power_sweep");
    std::size_t slot = 0;
    for (const auto &cfg : dhl_cfgs) {
        fig6.add(dhlSweepScenario(workload, cfg, max_power,
                                  &series[slot++]))
            .separator_after = true;
    }
    for (const auto &route : network::canonicalRoutes()) {
        fig6.add(opticalSweepScenario(workload, route, 1.0e3, max_power,
                                      16, &series[slot++]))
            .separator_after = true;
    }

    const exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(fig6);
    bench::emit(result, sweepHeaders(), opts);

    if (!opts.csv) {
        sketch(series);
        std::cout << "\nPaper shape check: for any budget the DHL "
                  << "curves sit below every network curve, and network "
                  << "curves order A0 < A1 < A2 < B < C in time.\n";
    }
    return 0;
}
