/**
 * @file
 * Experiment E6 — regenerates the paper's Figure 6: time per DLRM
 * training iteration (log scale) versus the communication power
 * budget, with quantised DHL series (one point per whole track) and
 * continuous network series for A0/A1/A2/B/C.
 *
 * Output is a tidy series table (and CSV with --csv) plus an ASCII
 * sketch of the log-log plot.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "mlsim/sweep.hpp"

using namespace dhl;
using namespace dhl::mlsim;
namespace u = dhl::units;

namespace {

/** A crude log-log ASCII sketch of the series. */
void
sketch(const std::vector<SweepSeries> &series)
{
    const int width = 68, height = 20;
    double pmin = 1e300, pmax = 0, tmin = 1e300, tmax = 0;
    for (const auto &s : series) {
        for (const auto &pt : s.points) {
            pmin = std::min(pmin, pt.power);
            pmax = std::max(pmax, pt.power);
            tmin = std::min(tmin, pt.iter_time);
            tmax = std::max(tmax, pt.iter_time);
        }
    }
    std::vector<std::string> grid(
        height, std::string(static_cast<std::size_t>(width), ' '));
    // Series order: three DHL configurations, then networks A0..C.
    const char marks[] = {'D', 'd', 'h', '0', '1', '2', 'B', 'C', '*'};
    for (std::size_t si = 0; si < series.size(); ++si) {
        const char mark = marks[std::min<std::size_t>(si, 8)];
        for (const auto &pt : series[si].points) {
            const double fx = (std::log(pt.power) - std::log(pmin)) /
                              (std::log(pmax) - std::log(pmin));
            const double fy =
                (std::log(pt.iter_time) - std::log(tmin)) /
                (std::log(tmax) - std::log(tmin));
            const int x = static_cast<int>(fx * (width - 1));
            const int y =
                height - 1 - static_cast<int>(fy * (height - 1));
            grid[static_cast<std::size_t>(y)]
                [static_cast<std::size_t>(x)] = mark;
        }
    }
    std::cout << "\nASCII sketch (x: log power "
              << u::formatPower(pmin) << ".." << u::formatPower(pmax)
              << "; y: log time/iter " << cell(tmin, 3) << ".."
              << cell(tmax, 3) << " s)\n";
    std::cout << "Marks: D/d/h = DHL configurations, 0/1/2/B/C = "
                 "networks A0..C\n";
    for (const auto &row : grid)
        std::cout << "  |" << row << "\n";
    std::cout << "  +" << std::string(static_cast<std::size_t>(68), '-')
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("Figure 6",
                      "time per DLRM iteration vs communication power "
                      "budget");
    }

    const TrainingWorkload workload = dlrmWorkload();
    std::vector<SweepSeries> series;

    // DHL curves: the paper plots several DHL-X-Y-Z configurations.
    const std::vector<core::DhlConfig> dhl_cfgs = {
        core::makeConfig(200, 500, 32),  // the default
        core::makeConfig(100, 500, 32),  // slower, more efficient
        core::makeConfig(200, 500, 64),  // bigger carts
    };
    const double max_power = 40e3; // 40 kW x-range
    for (const auto &cfg : dhl_cfgs) {
        DhlComm comm(cfg);
        TrainingSim sim(workload, comm);
        series.push_back(sweepQuantised(sim, max_power));
    }

    // Network curves: continuous link counts.
    for (const auto &route : network::canonicalRoutes()) {
        OpticalComm comm(route);
        TrainingSim sim(workload, comm);
        series.push_back(
            sweepContinuous(sim, 1.0e3, max_power, 16));
    }

    TextTable table({"Series", "Power (kW)", "Units", "Time/iter (s)"});
    for (const auto &s : series) {
        for (const auto &pt : s.points) {
            table.addRow({s.name, cell(u::toKilowatts(pt.power), 4),
                          cell(pt.units, 4), cell(pt.iter_time, 5)});
        }
        if (!csv)
            table.addSeparator();
    }
    bench::emit(table, csv);

    if (!csv) {
        // Reorder so the DHL curves sketch first.
        sketch(series);
        std::cout << "\nPaper shape check: for any budget the DHL "
                  << "curves sit below every network curve, and network "
                  << "curves order A0 < A1 < A2 < B < C in time.\n";
    }
    return 0;
}
