/**
 * @file
 * Experiment E16 (beyond-paper) — the strongest networking
 * counter-proposal from the paper's related work (§VII-D): energy-
 * proportional links that sleep when idle.  Quantifies how much
 * sleeping saves on duty-cycled bulk traffic, and why it cannot close
 * the per-byte gap to a DHL.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "network/energy_proportional.hpp"
#include "network/ocs.hpp"

using namespace dhl;
using namespace dhl::network;
namespace u = dhl::units;
namespace qty = dhl::qty;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("E16 (energy-proportional networking baseline)",
                      "link sleep states vs the DHL on a daily 2 PB "
                      "backup duty");
    }

    // 2 PB takes 11.1 h on one 400 Gbit/s link, so the duty is daily.
    const qty::Bytes bytes = qty::petabytes(2.0);
    const qty::Seconds period = qty::days(1.0);
    const std::uint64_t periods = 30; // a month

    const core::AnalyticalModel dhl_model(core::defaultConfig());
    const auto dhl_bulk = dhl_model.bulk(bytes);
    const qty::Joules dhl_energy =
        dhl_bulk.total_energy * static_cast<double>(periods);

    TextTable table({"Route", "Always-on (MJ)", "With sleep (MJ)",
                     "Sleep saving", "DHL (MJ)", "DHL vs sleeping net"});
    for (const auto &route : canonicalRoutes()) {
        EnergyProportionalModel m(route, SleepConfig{});
        const auto on = m.alwaysOnDuty(bytes, period, periods);
        const auto slept = m.periodicDuty(bytes, period, periods);
        table.addRow({route.name(), cell(u::toMegajoules(on.energy), 4),
                      cell(u::toMegajoules(slept.energy), 4),
                      cellTimes(on.energy / slept.energy, 3),
                      cell(u::toMegajoules(dhl_energy), 4),
                      cellTimes(slept.energy / dhl_energy, 3)});
    }
    bench::emit(table, csv);

    if (!csv) {
        // The other optical counter-proposal: circuit switching, which
        // eliminates the electrical switch transits entirely.
        OcsModel ocs;
        const auto circuit =
            ocs.transfer(bytes * static_cast<double>(periods));
        std::cout << "\nOptical circuit switching (the §VII-D "
                     "alternative): the same month of backups over an "
                     "established circuit costs "
                  << units::formatEnergy(circuit.energy) << " ("
                  << cell(circuit.energy / dhl_energy, 3)
                  << "x the DHL) — it collapses deep routes to ~A0 but "
                     "no further.\n";

        EnergyProportionalModel c(findRoute("C"), SleepConfig{});
        std::cout << "\nPer-byte energy while actively transferring "
                     "(sleep cannot change it):\n"
                  << "  route C: "
                  << units::formatSig(
                         c.activeJoulesPerByte().value() * 1e12, 4)
                  << " J/TB vs DHL "
                  << units::formatSig(
                         (dhl_bulk.total_energy / bytes).value() * 1e12,
                         4)
                  << " J/TB\n"
                  << "Sleeping rescues idle hours, not the transfer "
                     "itself; the paper's Table VI per-byte reductions "
                     "survive intact.\n";
    }
    return 0;
}
