/**
 * @file
 * Sharded-fleet microbenchmarks: throughput of the parallel DES paths
 * behind the --des-shards knob, with byte-identity to the serial path
 * asserted inside the benchmark itself.
 *
 * BM_FleetParallel/<shards> runs the same RoundRobin bulk transfer on
 * an 8-track fleet (4 two-track plant domains, faults + maintenance +
 * correlated plants all on) partitioned onto <shards> simulators, and
 * reports fleet DES events/s.  Before timing, the run's result fields
 * are digested and compared against the 1-shard digest — a sharded
 * run that drifts from the serial loop aborts the benchmark rather
 * than publishing a wrong number.
 *
 * BM_FlowSimChurn/<shards> drives the flow-level network model's churn
 * loop with its scan reductions parallelised onto <shards> workers
 * (FlowSim::setParallel) and asserts bytes delivered and finish time
 * are bit-identical to the serial scans.
 *
 * tools/run_fleet_bench.py wraps this binary and emits BENCH_fleet.json
 * (best-of-N events/s by shard count plus the N-vs-1 speedups).  On a
 * single-core host the speedup is ~1.0x by construction; the identity
 * assertions and the determinism test suite are the load-bearing
 * results there.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "network/flowsim.hpp"
#include "ops/fleet_ops.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

//===========================================================================
// Sharded fleet: RoundRobin bulk transfer under the full ops stack
//===========================================================================

constexpr std::size_t kTracks = 8;
constexpr std::uint64_t kCarts = 64;

ops::OpsConfig
fleetOps(std::size_t des_shards)
{
    ops::OpsConfig oc;
    oc.dispatch.policy = ops::DispatchPolicy::RoundRobin;
    oc.des_shards = des_shards;
    oc.domains.enabled = true;
    oc.domains.domain_size = 2;
    oc.domains.plant_mtbf = 0.05;
    oc.domains.plant_mttr = 0.01;
    oc.domains.seed = 13;
    oc.maintenance.windows.push_back({20.0, 30.0, 0.0, 5});
    oc.faults.enabled = true;
    oc.faults.seed = 13;
    oc.faults.lim_mtbf = 0.5;
    oc.faults.lim_mttr = 0.05;
    oc.faults.track_mtbf = 1.0;
    oc.faults.track_mttr = 0.1;
    oc.faults.station_mtbf = 0.8;
    oc.faults.station_mttr = 0.02;
    oc.faults.cart_repair_per_trip = 1e-2;
    oc.faults.cart_repair_hours = 0.02;
    return oc;
}

/** Everything a drifting shard map could perturb, serialised with full
 *  precision (hexfloat for the reals). */
std::string
fleetDigest(const ops::OpsRunResult &r)
{
    std::ostringstream os;
    os << std::hexfloat << r.base.total_time << "|"
       << r.base.effective_bandwidth << "|" << r.base.launches << "|"
       << r.base.total_energy << "|" << r.reroutes << "|" << r.drains
       << "|" << r.deferrals << "|" << r.maintenance_windows << "|"
       << r.plant_outages << "|" << r.open_latency_mean << "|"
       << r.open_latency_p99 << "|" << r.fleet_availability;
    return os.str();
}

/** One full run; returns (digest, DES events executed). */
std::pair<std::string, std::uint64_t>
fleetRun(std::size_t des_shards)
{
    core::DhlConfig cfg = core::defaultConfig();
    cfg.docking_stations = 2;
    ops::FleetOps ops(cfg, kTracks, fleetOps(des_shards), 13);
    const double dataset =
        static_cast<double>(kCarts) * cfg.cartCapacity().value();
    const ops::OpsRunResult r = ops.runBulkTransfer(dataset);
    std::uint64_t events = 0;
    for (std::size_t s = 0; s < ops.fleet().numShards(); ++s)
        events += ops.fleet().shardSim(s).eventsExecuted();
    return {fleetDigest(r), events};
}

void
BM_FleetParallel(benchmark::State &state)
{
    const auto shards = static_cast<std::size_t>(state.range(0));

    // Identity gate: a sharded run must reproduce the serial run's
    // results byte for byte before its throughput means anything.
    static const std::string serial_digest = fleetRun(1).first;
    if (fleetRun(shards).first != serial_digest) {
        state.SkipWithError("sharded fleet run diverged from 1 shard");
        return;
    }

    std::uint64_t events = 0;
    for (auto _ : state)
        events += fleetRun(shards).second;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FleetParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

//===========================================================================
// Flow-sim scan parallelism (FlowSim::setParallel)
//===========================================================================

/** Heavy churn: many concurrent flows over shared links, so the
 *  next-completion scan and drain loops dominate. */
std::pair<std::string, std::uint64_t>
flowChurn(std::size_t workers)
{
    sim::Simulator sim;
    network::FlowSim fs(sim);
    ThreadPool pool(workers);
    if (workers > 1)
        fs.setParallel(&pool, /*grain=*/64);
    std::vector<int> links;
    for (int i = 0; i < 16; ++i)
        links.push_back(fs.addLink(u::gigabitsPerSecond(400)));
    for (int i = 0; i < 2048; ++i) {
        fs.startFlow({links[i % 16], links[(i + 5) % 16]},
                     u::gigabytes(1 + i % 7), 24.0, nullptr);
    }
    sim.run();
    std::ostringstream os;
    os << std::hexfloat << fs.bytesDelivered() << "|" << sim.now();
    return {os.str(), sim.eventsExecuted()};
}

void
BM_FlowSimChurn(benchmark::State &state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));

    static const std::string serial_digest = flowChurn(1).first;
    if (flowChurn(workers).first != serial_digest) {
        state.SkipWithError("parallel flow scans diverged from serial");
        return;
    }

    std::uint64_t events = 0;
    for (auto _ : state)
        events += flowChurn(workers).second;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FlowSimChurn)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
