/**
 * @file
 * Experiments E2/E3 — regenerates the paper's Table VI: the DHL
 * design-space exploration (single-launch metrics for every
 * speed/length/capacity configuration) and the 29 PB bulk-move
 * comparison (time speedup and per-route energy reductions).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/comparison.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("Table VI",
                      "DHL design-space exploration and 29 PB move vs "
                      "400 Gbit/s routes");
    }

    const double dataset = storage::referenceDlrmDataset().size;

    TextTable table({"Speed (m/s)", "Length (m)", "Cart (TB)",
                     "Energy (kJ)", "Eff (GB/J)", "Time (s)", "BW (TB/s)",
                     "Peak (kW)", "Speedup", "vs A0", "vs A1", "vs A2",
                     "vs B", "vs C"});

    for (std::size_t i = 0; i < tableViRows().size(); ++i) {
        const auto &row = tableViRows()[i];
        // Visual groups of three rows, as in the paper.
        if (i > 0 && i % 3 == 0 && i < 12)
            table.addSeparator();
        const auto computed = computeDesignSpaceRow(row.config, dataset);
        const auto &lm = computed.launch;

        std::vector<std::string> cells{
            cell(row.config.max_speed, 4),
            cell(row.config.track_length, 5),
            cell(lm.capacity / u::terabytes(1), 4),
            cell(u::toKilojoules(lm.energy), 3),
            cell(lm.efficiency, 3),
            cell(lm.trip_time, 3),
            cell(lm.bandwidth / u::terabytes(1), 3),
            cell(u::toKilowatts(lm.peak_power), 3),
            cellTimes(computed.time_speedup, 4),
        };
        for (const auto &rc : computed.routes)
            cells.push_back(cellTimes(rc.energy_reduction, 4));
        table.addRow(std::move(cells));
    }
    bench::emit(table, csv);

    if (!csv) {
        std::cout
            << "\nPaper reference rows (energy kJ / GB-J / time s / TB-s "
            << "/ kW / speedup / vsA0 / vsC):\n";
        for (const auto &row : tableViRows()) {
            std::cout << "  " << row.config.label() << ": "
                      << cell(row.paper_energy_kj, 3) << " / "
                      << cell(row.paper_efficiency_gbpj, 3) << " / "
                      << cell(row.paper_time_s, 3) << " / "
                      << cell(row.paper_bandwidth_tbps, 3) << " / "
                      << cell(row.paper_peak_power_kw, 3) << " / "
                      << cell(row.paper_speedup, 4) << "x / "
                      << cell(row.paper_reduction_a0, 3) << "x / "
                      << cell(row.paper_reduction_c, 4) << "x\n";
        }
        std::cout << "\nTrips for 29 PB (paper: 227/114/57 loaded, "
                  << "doubled by returns):\n";
        for (std::size_t n : {16u, 32u, 64u}) {
            const AnalyticalModel m(makeConfig(200, 500, n));
            const auto b = m.bulk(dataset);
            std::cout << "  " << n << " SSDs/cart: " << b.loaded_trips
                      << " loaded, " << b.total_trips << " total\n";
        }
    }
    return 0;
}
