/**
 * @file
 * Experiments E2/E3 — regenerates the paper's Table VI: the DHL
 * design-space exploration (single-launch metrics for every
 * speed/length/capacity configuration) and the 29 PB bulk-move
 * comparison (time speedup and per-route energy reductions).
 *
 * One runner scenario per configuration: the design space is an
 * embarrassingly parallel grid, evaluated across --jobs cores with
 * rows emitted in declaration order.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/comparison.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;
namespace qty = dhl::qty;

namespace {

/** Format one computed Table VI row. */
std::vector<std::string>
formatRow(const DhlConfig &cfg, const DesignSpaceRow &computed)
{
    const auto &lm = computed.launch;
    std::vector<std::string> cells{
        cell(cfg.max_speed, 4),
        cell(cfg.track_length, 5),
        cell(lm.capacity.value() / u::terabytes(1), 4),
        cell(u::toKilojoules(lm.energy.value()), 3),
        cell(lm.efficiency, 3),
        cell(lm.trip_time.value(), 3),
        cell(lm.bandwidth.value() / u::terabytes(1), 3),
        cell(u::toKilowatts(lm.peak_power.value()), 3),
        cellTimes(computed.time_speedup, 4),
    };
    for (const auto &rc : computed.routes)
        cells.push_back(cellTimes(rc.energy_reduction, 4));
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("Table VI",
                      "DHL design-space exploration and 29 PB move vs "
                      "400 Gbit/s routes");
    }

    const double dataset = storage::referenceDlrmDataset().size;

    exp::Experiment table6("table6_design_space");
    for (std::size_t i = 0; i < tableViRows().size(); ++i) {
        const DhlConfig cfg = tableViRows()[i].config;
        // Visual groups of three rows, as in the paper.
        const bool group_end = ((i + 1) % 3 == 0 && i + 1 < 12);
        table6.add(
            cfg.label(),
            [cfg, dataset](exp::ScenarioContext &) -> exp::ScenarioRows {
                return {formatRow(
                    cfg,
                    computeDesignSpaceRow(cfg, qty::Bytes{dataset}))};
            },
            group_end);
    }

    const exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(table6);
    bench::emit(result,
                {"Speed (m/s)", "Length (m)", "Cart (TB)", "Energy (kJ)",
                 "Eff (GB/J)", "Time (s)", "BW (TB/s)", "Peak (kW)",
                 "Speedup", "vs A0", "vs A1", "vs A2", "vs B", "vs C"},
                opts);

    if (!opts.csv) {
        std::cout
            << "\nPaper reference rows (energy kJ / GB-J / time s / TB-s "
            << "/ kW / speedup / vsA0 / vsC):\n";
        for (const auto &row : tableViRows()) {
            std::cout << "  " << row.config.label() << ": "
                      << cell(row.paper_energy_kj, 3) << " / "
                      << cell(row.paper_efficiency_gbpj, 3) << " / "
                      << cell(row.paper_time_s, 3) << " / "
                      << cell(row.paper_bandwidth_tbps, 3) << " / "
                      << cell(row.paper_peak_power_kw, 3) << " / "
                      << cell(row.paper_speedup, 4) << "x / "
                      << cell(row.paper_reduction_a0, 3) << "x / "
                      << cell(row.paper_reduction_c, 4) << "x\n";
        }
        std::cout << "\nTrips for 29 PB (paper: 227/114/57 loaded, "
                  << "doubled by returns):\n";
        for (std::size_t n : {16u, 32u, 64u}) {
            const AnalyticalModel m(makeConfig(200, 500, n));
            const auto b = m.bulk(qty::Bytes{dataset});
            std::cout << "  " << n << " SSDs/cart: " << b.loaded_trips
                      << " loaded, " << b.total_trips << " total\n";
        }
    }
    return 0;
}
