/**
 * @file
 * Experiment E13 — google-benchmark microbenchmarks of the simulation
 * substrates: DES event throughput, flow-sim reallocation cost, and the
 * closed-form model evaluation rate (how fast the design space can be
 * swept).
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/flowsim.hpp"
#include "plan/batch_eval.hpp"
#include "plan/scenario.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
namespace u = dhl::units;

//===========================================================================
// DES kernel
//===========================================================================

static void
BM_KernelScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        std::uint64_t fired = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sim.schedule(static_cast<double>(i % 97), [&fired] {
                ++fired;
            });
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

static void
BM_KernelCascade(benchmark::State &state)
{
    // Each event schedules the next: worst-case pointer-chasing.
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        std::uint64_t left = n;
        std::function<void()> step = [&] {
            if (--left > 0)
                sim.schedule(0.001, step);
        };
        sim.schedule(0.001, step);
        sim.run();
        benchmark::DoNotOptimize(left);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelCascade)->Arg(1 << 12)->Arg(1 << 16);

//===========================================================================
// Flow simulator
//===========================================================================

static void
BM_FlowSimChurn(benchmark::State &state)
{
    const auto n_flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        network::FlowSim fs(sim);
        std::vector<int> links;
        for (int i = 0; i < 8; ++i)
            links.push_back(fs.addLink(u::gigabitsPerSecond(400)));
        for (int i = 0; i < n_flows; ++i) {
            fs.startFlow({links[i % 8], links[(i + 1) % 8]},
                         u::gigabytes(1 + i % 7), 24.0, nullptr);
        }
        sim.run();
        benchmark::DoNotOptimize(fs.bytesDelivered());
    }
    state.SetItemsProcessed(state.iterations() * n_flows);
}
BENCHMARK(BM_FlowSimChurn)->Arg(16)->Arg(64)->Arg(256);

//===========================================================================
// Closed-form model and DES end-to-end
//===========================================================================

static void
BM_AnalyticalDesignSpace(benchmark::State &state)
{
    const double dataset = u::petabytes(29);
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &row : core::tableViRows()) {
            const core::AnalyticalModel m(row.config);
            acc += m.bulk(dhl::qty::Bytes{dataset}).total_time.value();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(core::tableViRows().size()));
}
BENCHMARK(BM_AnalyticalDesignSpace);

//===========================================================================
// Capacity-planning evaluator: scalar (per-call model re-derivation,
// the paper-artefact pattern) vs batched SoA (constants hoisted once).
// The two paths are bit-identical by construction — asserted here
// before timing so the speedup never comes from computing less.
//===========================================================================

static void
BM_ScalarEval(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const plan::PlanAssumptions assume;
    const plan::DesignPoint design{4, 8, 1};
    const plan::ScenarioSampler sampler(plan::ScenarioDistributions{}, 13);
    plan::ScenarioBatch in;
    sampler.fill(0, n, in);
    for (auto _ : state) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += plan::evaluateScalar(assume, design, in.row(i)).latency;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScalarEval)->Arg(1 << 10);

static void
BM_BatchedEval(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const plan::PlanAssumptions assume;
    const plan::DesignPoint design{4, 8, 1};
    const plan::ScenarioSampler sampler(plan::ScenarioDistributions{}, 13);
    plan::ScenarioBatch in;
    sampler.fill(0, n, in);
    const plan::DesignConstants constants =
        plan::designConstants(assume, design);
    plan::EvalBatch out;

    // Identity gate: the batched path must reproduce the scalar path
    // bit for bit, or the comparison times two different computations.
    plan::evaluateBatch(constants, in, assume.slo_latency, out);
    for (std::size_t i = 0; i < n; ++i) {
        const plan::ScenarioOutcome o =
            plan::evaluateScalar(assume, design, in.row(i));
        if (o.latency != out.latency[i] ||
            o.energy_day != out.energy_day[i]) {
            state.SkipWithError("batched != scalar");
            return;
        }
    }

    for (auto _ : state) {
        plan::evaluateBatch(constants, in, assume.slo_latency, out);
        benchmark::DoNotOptimize(out.latency.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchedEval)->Arg(1 << 10)->Arg(1 << 14);

static void
BM_DesBulkTransfer(benchmark::State &state)
{
    const auto carts = static_cast<double>(state.range(0));
    const core::DhlConfig cfg = core::defaultConfig();
    for (auto _ : state) {
        core::DhlSimulation des(cfg);
        const auto r =
            des.runBulkTransfer(carts * cfg.cartCapacity().value());
        benchmark::DoNotOptimize(r.total_time);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(carts));
}
BENCHMARK(BM_DesBulkTransfer)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
