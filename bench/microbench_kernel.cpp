/**
 * @file
 * Experiment E13 — google-benchmark microbenchmarks of the simulation
 * substrates: DES event throughput, flow-sim reallocation cost, and the
 * closed-form model evaluation rate (how fast the design space can be
 * swept).
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/simulation.hpp"
#include "network/flowsim.hpp"
#include "sim/simulator.hpp"

using namespace dhl;
namespace u = dhl::units;

//===========================================================================
// DES kernel
//===========================================================================

static void
BM_KernelScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        std::uint64_t fired = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sim.schedule(static_cast<double>(i % 97), [&fired] {
                ++fired;
            });
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelScheduleRun)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

static void
BM_KernelCascade(benchmark::State &state)
{
    // Each event schedules the next: worst-case pointer-chasing.
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        std::uint64_t left = n;
        std::function<void()> step = [&] {
            if (--left > 0)
                sim.schedule(0.001, step);
        };
        sim.schedule(0.001, step);
        sim.run();
        benchmark::DoNotOptimize(left);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelCascade)->Arg(1 << 12)->Arg(1 << 16);

//===========================================================================
// Flow simulator
//===========================================================================

static void
BM_FlowSimChurn(benchmark::State &state)
{
    const auto n_flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        network::FlowSim fs(sim);
        std::vector<int> links;
        for (int i = 0; i < 8; ++i)
            links.push_back(fs.addLink(u::gigabitsPerSecond(400)));
        for (int i = 0; i < n_flows; ++i) {
            fs.startFlow({links[i % 8], links[(i + 1) % 8]},
                         u::gigabytes(1 + i % 7), 24.0, nullptr);
        }
        sim.run();
        benchmark::DoNotOptimize(fs.bytesDelivered());
    }
    state.SetItemsProcessed(state.iterations() * n_flows);
}
BENCHMARK(BM_FlowSimChurn)->Arg(16)->Arg(64)->Arg(256);

//===========================================================================
// Closed-form model and DES end-to-end
//===========================================================================

static void
BM_AnalyticalDesignSpace(benchmark::State &state)
{
    const double dataset = u::petabytes(29);
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &row : core::tableViRows()) {
            const core::AnalyticalModel m(row.config);
            acc += m.bulk(dhl::qty::Bytes{dataset}).total_time.value();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(core::tableViRows().size()));
}
BENCHMARK(BM_AnalyticalDesignSpace);

static void
BM_DesBulkTransfer(benchmark::State &state)
{
    const auto carts = static_cast<double>(state.range(0));
    const core::DhlConfig cfg = core::defaultConfig();
    for (auto _ : state) {
        core::DhlSimulation des(cfg);
        const auto r =
            des.runBulkTransfer(carts * cfg.cartCapacity().value());
        benchmark::DoNotOptimize(r.total_time);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(carts));
}
BENCHMARK(BM_DesBulkTransfer)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
