/**
 * @file
 * Experiment E17 — fault-injection validation: the DES's observed
 * service availability under the seeded FaultInjector must converge to
 * the closed-form steady-state AvailabilityModel (series availability
 * MTBF/(MTBF+MTTR) per component), and bulk transfers under faults
 * must derate towards the model's system availability.
 *
 * Scenarios run through the ExperimentRunner; `--jobs 1` and parallel
 * runs print byte-identical tables (the fault timeline is a pure
 * function of (seed, config), never of thread interleaving).
 */

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/reliability.hpp"
#include "dhl/simulation.hpp"
#include "faults/fault_injector.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

namespace {

constexpr double kSecondsPerHour = 3600.0;

/** Long-horizon availability measurement parameters: component rates
 *  accelerated ~500x over the engineering estimates so a 50000-hour
 *  horizon covers hundreds of failure cycles per component. */
ReliabilityConfig
acceleratedRates()
{
    ReliabilityConfig rel;
    rel.lim_mtbf = 100.0;
    rel.lim_mttr = 8.0;
    rel.track_mtbf = 200.0;
    rel.track_mttr = 24.0;
    rel.station_mtbf = 60.0;
    rel.station_mttr = 4.0;
    rel.cart_repair_per_trip = 0.0; // availability is outage-driven
    return rel;
}

/** One availability-convergence scenario: drive a bare FaultInjector
 *  for the full horizon and compare observed vs closed-form. */
exp::Scenario
availabilityScenario(const DhlConfig &dhl, const ReliabilityConfig &rel,
                     std::uint64_t seed, double horizon_hours)
{
    exp::Scenario s;
    s.name = "seed " + std::to_string(seed);
    s.run = [dhl, rel, seed, horizon_hours](exp::ScenarioContext &) {
        const double horizon_s = horizon_hours * kSecondsPerHour;
        sim::Simulator sim;
        faults::FaultState state(sim);
        const faults::FaultConfig fc = toFaultConfig(rel, seed, horizon_s);
        faults::FaultInjector injector(sim, state, fc,
                                       dhl.docking_stations);
        sim.run(); // drains shortly after the horizon

        const AvailabilityModel model(dhl, rel);
        const double predicted = model.report().system_availability;
        const double observed = state.observedAvailability(horizon_s);
        const double rel_err =
            std::abs(observed - predicted) / predicted;

        exp::ScenarioRows rows;
        rows.push_back({"seed " + std::to_string(seed),
                        std::to_string(injector.eventsInjected()),
                        std::to_string(state.serviceTransitions()),
                        cell(observed, 5), cell(predicted, 5),
                        cell(rel_err * 100.0, 3)});
        return rows;
    };
    return s;
}

/** One degraded-throughput scenario: the same bulk transfer with and
 *  without fault injection; the bandwidth ratio tracks (loosely — the
 *  run is finite and queueing effects stack) the system availability. */
exp::Scenario
degradedScenario(std::string name, const ReliabilityConfig &rel,
                 std::uint64_t seed, std::uint64_t carts)
{
    exp::Scenario s;
    s.name = name;
    s.run = [name, rel, seed, carts](exp::ScenarioContext &) {
        const DhlConfig cfg = defaultConfig();
        const double dataset =
            static_cast<double>(carts) * cfg.cartCapacity().value();

        DhlSimulation clean(cfg);
        const BulkRunResult rc = clean.runBulkTransfer(dataset);

        DhlSimulation faulty(cfg);
        BulkRunOptions opts;
        opts.faults = toFaultConfig(rel, seed);
        const BulkRunResult rf = faulty.runBulkTransfer(dataset, opts);

        const AvailabilityModel model(cfg, rel);
        const double predicted = model.report().system_availability;

        exp::ScenarioRows rows;
        rows.push_back(
            {name, cell(predicted, 4),
             cell(rc.effective_bandwidth / u::gigabytes(1), 4),
             cell(rf.effective_bandwidth / u::gigabytes(1), 4),
             cell(rf.effective_bandwidth / rc.effective_bandwidth, 4),
             std::to_string(faulty.controller().parkedLaunches()),
             std::to_string(faulty.controller().heldOpens()),
             std::to_string(faulty.controller().cartBreakdowns())});
        return rows;
    };
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("E17 (beyond-paper)",
                      "fault-injection DES vs closed-form availability "
                      "model");
    }

    exp::ExperimentRunner runner(bench::runOptions(opts));

    // Part 1: long-run availability convergence across a seed sweep.
    const DhlConfig dhl = defaultConfig();
    const ReliabilityConfig rel = acceleratedRates();
    const double horizon_hours = 50000.0;

    exp::Experiment avail("availability convergence");
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        avail.add(availabilityScenario(dhl, rel, seed, horizon_hours));

    if (!opts.csv) {
        std::cout << "\nAvailability convergence (" << horizon_hours
                  << " h horizon, rates accelerated ~500x):\n";
    }
    bench::emit(runner.run(avail),
                {"Scenario", "Fault events", "Service edges",
                 "DES availability", "Model availability",
                 "Rel err (%)"},
                opts);

    // Part 2: bulk transfers on a faulty system derate towards the
    // system availability (heavily accelerated rates so outages land
    // within a ~1000 s transfer).
    ReliabilityConfig moderate;
    moderate.lim_mtbf = 0.2;
    moderate.lim_mttr = 0.0125;
    moderate.track_mtbf = 0.4;
    moderate.track_mttr = 0.012;
    moderate.station_mtbf = 0.12;
    moderate.station_mttr = 0.01;
    moderate.cart_repair_per_trip = 0.02;
    moderate.cart_repair_hours = 0.01;

    ReliabilityConfig heavy = moderate;
    heavy.lim_mtbf = 0.05;
    heavy.track_mtbf = 0.1;
    heavy.station_mtbf = 0.03;
    heavy.cart_repair_per_trip = 0.05;

    exp::Experiment degraded("degraded throughput");
    degraded.add(degradedScenario("moderate faults", moderate, 7, 48));
    degraded.add(degradedScenario("heavy faults", heavy, 7, 48));

    if (!opts.csv)
        std::cout << "\nDegraded-mode bulk transfers (48 carts):\n";
    bench::emit(runner.run(degraded),
                {"Scenario", "Model avail", "Clean BW (GB/s)",
                 "Faulted BW (GB/s)", "Ratio", "Parked", "Held opens",
                 "Breakdowns"},
                opts);

    if (!opts.csv) {
        std::cout
            << "\nThe DES availability converges to the closed form "
               "because both use the same MTBF/MTTR parameters and "
               "steady-state availability holds for exponential "
               "uptimes with fixed repairs.  Transfer derating "
               "exceeds the availability loss alone: outages also "
               "serialise queued work (parked trips, held opens).\n";
    }
    return 0;
}
