/**
 * @file
 * Experiments E17 and E18 — reliability validation.
 *
 * E17 (fault-injection validation): the DES's observed service
 * availability under the seeded FaultInjector must converge to the
 * closed-form steady-state AvailabilityModel (series availability
 * MTBF/(MTBF+MTTR) per component), with a renewal-cycle bootstrap 95%
 * confidence interval on the observed value, and bulk transfers under
 * faults must derate towards the model's system availability.
 *
 * E18 (fleet operations): under a correlated vacuum-plant outage plus a
 * planned maintenance window, availability-aware dispatch must deliver
 * strictly more of the clean-fleet bandwidth (and a strictly lower P99
 * queued-open latency) than the static round-robin baseline.
 *
 * `--experiment e17|e18|all` selects what runs (default all).
 * Scenarios run through the ExperimentRunner; `--jobs 1` and parallel
 * runs print byte-identical tables (fault and ops timelines are pure
 * functions of (seed, config), never of thread interleaving).
 */

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dhl/reliability.hpp"
#include "dhl/simulation.hpp"
#include "faults/fault_injector.hpp"
#include "ops/fleet_ops.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

namespace {

constexpr double kSecondsPerHour = 3600.0;

/**
 * Renewal-cycle bootstrap 95% CI on observed availability: pair the
 * service edge log into complete up/down cycles, resample cycles with
 * replacement, and take the 2.5th/97.5th percentiles of the resampled
 * availability ratios.  Deterministic (own seeded stream).
 */
std::pair<double, double>
bootstrapAvailabilityCI(const std::vector<std::pair<double, bool>> &log,
                        double horizon, std::uint64_t seed)
{
    std::vector<std::pair<double, double>> cycles; // (up, down), s
    double up_start = 0.0;   // service is up from t = 0
    double down_start = -1.0;
    double up_len = 0.0;
    for (const auto &edge : log) {
        if (edge.first > horizon)
            break;
        if (!edge.second) { // up -> down
            up_len = edge.first - up_start;
            down_start = edge.first;
        } else if (down_start >= 0.0) { // down -> up: cycle complete
            cycles.push_back({up_len, edge.first - down_start});
            up_start = edge.first;
            down_start = -1.0;
        }
    }
    if (cycles.size() < 2)
        return {1.0, 1.0}; // too few outages to resample

    Rng rng(deriveSeed(seed, 0xB007));
    constexpr int kResamples = 1000;
    std::vector<double> samples;
    samples.reserve(kResamples);
    const auto n = static_cast<std::int64_t>(cycles.size());
    for (int b = 0; b < kResamples; ++b) {
        double up = 0.0;
        double total = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
            const auto &c =
                cycles[static_cast<std::size_t>(rng.uniformInt(0, n - 1))];
            up += c.first;
            total += c.first + c.second;
        }
        samples.push_back(up / total);
    }
    return {stats::percentile(samples, 2.5),
            stats::percentile(samples, 97.5)};
}

/** Long-horizon availability measurement parameters: component rates
 *  accelerated ~500x over the engineering estimates so a 50000-hour
 *  horizon covers hundreds of failure cycles per component. */
ReliabilityConfig
acceleratedRates()
{
    ReliabilityConfig rel;
    rel.lim_mtbf = 100.0;
    rel.lim_mttr = 8.0;
    rel.track_mtbf = 200.0;
    rel.track_mttr = 24.0;
    rel.station_mtbf = 60.0;
    rel.station_mttr = 4.0;
    rel.cart_repair_per_trip = 0.0; // availability is outage-driven
    return rel;
}

/** One availability-convergence scenario: drive a bare FaultInjector
 *  for the full horizon and compare observed vs closed-form. */
exp::Scenario
availabilityScenario(const DhlConfig &dhl, const ReliabilityConfig &rel,
                     std::uint64_t seed, double horizon_hours)
{
    exp::Scenario s;
    s.name = "seed " + std::to_string(seed);
    s.run = [dhl, rel, seed, horizon_hours](exp::ScenarioContext &) {
        const double horizon_s = horizon_hours * kSecondsPerHour;
        sim::Simulator sim;
        faults::FaultState state(sim);
        const faults::FaultConfig fc = toFaultConfig(rel, seed, horizon_s);
        faults::FaultInjector injector(sim, state, fc,
                                       dhl.docking_stations);
        sim.run(); // drains shortly after the horizon

        const AvailabilityModel model(dhl, rel);
        const double predicted = model.report().system_availability;
        const double observed = state.observedAvailability(horizon_s);
        const double rel_err =
            std::abs(observed - predicted) / predicted;
        const auto ci =
            bootstrapAvailabilityCI(state.serviceLog(), horizon_s, seed);

        exp::ScenarioRows rows;
        rows.push_back({"seed " + std::to_string(seed),
                        std::to_string(injector.eventsInjected()),
                        std::to_string(state.serviceTransitions()),
                        cell(observed, 5), cell(ci.first, 5),
                        cell(ci.second, 5), cell(predicted, 5),
                        cell(rel_err * 100.0, 3)});
        return rows;
    };
    return s;
}

/** One degraded-throughput scenario: the same bulk transfer with and
 *  without fault injection; the bandwidth ratio tracks (loosely — the
 *  run is finite and queueing effects stack) the system availability. */
exp::Scenario
degradedScenario(std::string name, const ReliabilityConfig &rel,
                 std::uint64_t seed, std::uint64_t carts)
{
    exp::Scenario s;
    s.name = name;
    s.run = [name, rel, seed, carts](exp::ScenarioContext &) {
        const DhlConfig cfg = defaultConfig();
        const double dataset =
            static_cast<double>(carts) * cfg.cartCapacity().value();

        DhlSimulation clean(cfg);
        const BulkRunResult rc = clean.runBulkTransfer(dataset);

        DhlSimulation faulty(cfg);
        BulkRunOptions opts;
        opts.faults = toFaultConfig(rel, seed);
        const BulkRunResult rf = faulty.runBulkTransfer(dataset, opts);

        const AvailabilityModel model(cfg, rel);
        const double predicted = model.report().system_availability;

        exp::ScenarioRows rows;
        rows.push_back(
            {name, cell(predicted, 4),
             cell(rc.effective_bandwidth / u::gigabytes(1), 4),
             cell(rf.effective_bandwidth / u::gigabytes(1), 4),
             cell(rf.effective_bandwidth / rc.effective_bandwidth, 4),
             std::to_string(faulty.controller().parkedLaunches()),
             std::to_string(faulty.controller().heldOpens()),
             std::to_string(faulty.controller().cartBreakdowns())});
        return rows;
    };
    return s;
}

/** The E18 fault environment: two-track vacuum-plant domains with an
 *  aggressive trip process plus a one-shot maintenance window on the
 *  last track, so both correlated and planned downtime land inside a
 *  ~100 s transfer.  Identical for every policy (time-driven, never
 *  dispatch-driven), so rows differ only by dispatch. */
ops::OpsConfig
e18Environment(ops::DispatchPolicy policy, int min_priority_degraded,
               std::size_t des_shards)
{
    ops::OpsConfig oc;
    oc.dispatch.policy = policy;
    oc.dispatch.min_priority_degraded = min_priority_degraded;
    oc.des_shards = des_shards;
    oc.domains.enabled = true;
    oc.domains.domain_size = 2;
    oc.domains.plant_mtbf = 0.02; // h: trips land within the run
    oc.domains.plant_mttr = 0.01; // h: 36 s pump-down per trip
    oc.domains.seed = 21;
    oc.maintenance.windows.push_back({10.0, 30.0, 0.0, 3});
    return oc;
}

/** One E18 scenario: the same bulk transfer on a clean fleet and under
 *  the shared fault environment, per dispatch policy.  Delivered
 *  availability is the faulted/clean effective-bandwidth ratio — the
 *  fraction of the fleet's healthy throughput the policy preserved. */
exp::Scenario
fleetPolicyScenario(std::string name, ops::DispatchPolicy policy,
                    int min_priority_degraded, std::uint64_t carts,
                    std::size_t des_shards)
{
    exp::Scenario s;
    s.name = name;
    s.run = [name, policy, min_priority_degraded, carts,
             des_shards](exp::ScenarioContext &) {
        DhlConfig cfg = defaultConfig();
        cfg.docking_stations = 2;
        constexpr std::size_t kTracks = 4;
        const double dataset =
            static_cast<double>(carts) * cfg.cartCapacity().value();

        ops::OpsConfig clean_ops;
        clean_ops.dispatch.policy = policy;
        clean_ops.des_shards = des_shards;
        ops::FleetOps clean(cfg, kTracks, clean_ops);
        const ops::OpsRunResult rc = clean.runBulkTransfer(dataset);

        // Half the jobs are bulk (priority 0), half latency-sensitive
        // (priority 1); only the admission-control row sets a floor.
        std::vector<RequestMeta> meta(carts);
        for (std::size_t j = 0; j < meta.size(); ++j)
            meta[j].priority = static_cast<int>(j % 2);

        ops::FleetOps faulty(
            cfg, kTracks,
            e18Environment(policy, min_priority_degraded, des_shards));
        const ops::OpsRunResult rf =
            faulty.runBulkTransfer(dataset, {}, meta);

        const double delivered = rf.base.effective_bandwidth /
                                 rc.base.effective_bandwidth;
        exp::ScenarioRows rows;
        rows.push_back(
            {name, cell(delivered, 4),
             cell(rf.base.total_time, 4),
             cell(rf.open_latency_mean, 4),
             cell(rf.open_latency_p99, 4),
             std::to_string(rf.reroutes),
             std::to_string(rf.deferrals),
             std::to_string(rf.plant_outages),
             std::to_string(rf.maintenance_windows),
             cell(rf.fleet_availability, 4)});
        return rows;
    };
    return s;
}

/** Validate the shared --experiment flag: e17|e18|all (default all). */
std::string
checkExperiment(const bench::Options &opts)
{
    const std::string which =
        opts.experiment.empty() ? "all" : opts.experiment;
    if (which != "e17" && which != "e18" && which != "all") {
        std::cerr << "error: --experiment expects e17|e18|all, got '"
                  << which << "'\n";
        std::exit(2);
    }
    return which;
}

void
runE17(exp::ExperimentRunner &runner, const bench::Options &opts)
{
    // Part 1: long-run availability convergence across a seed sweep.
    const DhlConfig dhl = defaultConfig();
    const ReliabilityConfig rel = acceleratedRates();
    const double horizon_hours = 50000.0;

    exp::Experiment avail("availability convergence");
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        avail.add(availabilityScenario(dhl, rel, seed, horizon_hours));

    if (!opts.csv) {
        std::cout << "\nAvailability convergence (" << horizon_hours
                  << " h horizon, rates accelerated ~500x):\n";
    }
    bench::emit(runner.run(avail),
                {"Scenario", "Fault events", "Service edges",
                 "DES availability", "CI lo (95%)", "CI hi (95%)",
                 "Model availability", "Rel err (%)"},
                opts);

    // Part 2: bulk transfers on a faulty system derate towards the
    // system availability (heavily accelerated rates so outages land
    // within a ~1000 s transfer).
    ReliabilityConfig moderate;
    moderate.lim_mtbf = 0.2;
    moderate.lim_mttr = 0.0125;
    moderate.track_mtbf = 0.4;
    moderate.track_mttr = 0.012;
    moderate.station_mtbf = 0.12;
    moderate.station_mttr = 0.01;
    moderate.cart_repair_per_trip = 0.02;
    moderate.cart_repair_hours = 0.01;

    ReliabilityConfig heavy = moderate;
    heavy.lim_mtbf = 0.05;
    heavy.track_mtbf = 0.1;
    heavy.station_mtbf = 0.03;
    heavy.cart_repair_per_trip = 0.05;

    exp::Experiment degraded("degraded throughput");
    degraded.add(degradedScenario("moderate faults", moderate, 7, 48));
    degraded.add(degradedScenario("heavy faults", heavy, 7, 48));

    if (!opts.csv)
        std::cout << "\nDegraded-mode bulk transfers (48 carts):\n";
    bench::emit(runner.run(degraded),
                {"Scenario", "Model avail", "Clean BW (GB/s)",
                 "Faulted BW (GB/s)", "Ratio", "Parked", "Held opens",
                 "Breakdowns"},
                opts);

    if (!opts.csv) {
        std::cout
            << "\nThe DES availability converges to the closed form "
               "because both use the same MTBF/MTTR parameters and "
               "steady-state availability holds for exponential "
               "uptimes with fixed repairs.  The 95% CI resamples the "
               "run's own up/down renewal cycles (bootstrap); the "
               "model value must fall inside it.  Transfer derating "
               "exceeds the availability loss alone: outages also "
               "serialise queued work (parked trips, held opens).\n";
    }
}

void
runE18(exp::ExperimentRunner &runner, const bench::Options &opts)
{
    constexpr std::uint64_t kCarts = 48;

    exp::Experiment policies("fleet dispatch policies");
    policies.add(fleetPolicyScenario("round-robin",
                                     ops::DispatchPolicy::RoundRobin, 0,
                                     kCarts, opts.des_shards));
    policies.add(fleetPolicyScenario("least-queued",
                                     ops::DispatchPolicy::LeastQueued, 0,
                                     kCarts, opts.des_shards));
    policies.add(
        fleetPolicyScenario("availability",
                            ops::DispatchPolicy::AvailabilityAware, 0,
                            kCarts, opts.des_shards));
    policies.add(fleetPolicyScenario(
        "availability + admission",
        ops::DispatchPolicy::AvailabilityAware, 1, kCarts,
        opts.des_shards));

    if (!opts.csv) {
        std::cout << "\nFleet dispatch under a correlated plant outage "
                     "+ maintenance window (4 tracks, "
                  << kCarts << " carts):\n";
    }
    const exp::ExperimentResult result = runner.run(policies);
    bench::emit(result,
                {"Policy", "Delivered avail", "Makespan (s)",
                 "Open mean (s)", "Open P99 (s)", "Reroutes",
                 "Deferrals", "Plant outages", "Maint windows",
                 "Fleet avail"},
                opts);

    if (!opts.csv) {
        // The acceptance claim, checked on the rows just printed:
        // availability-aware must strictly beat round-robin on both
        // delivered availability and P99 open latency.
        const auto rows = result.rows();
        const auto &rr = rows.at(0);
        const auto &aa = rows.at(2);
        const bool better = std::stod(aa.at(1)) > std::stod(rr.at(1)) &&
                            std::stod(aa.at(4)) < std::stod(rr.at(4));
        std::cout
            << "\nAvailability-aware vs round-robin: delivered "
               "availability " << rr.at(1) << " -> " << aa.at(1)
            << ", open P99 " << rr.at(4) << " s -> " << aa.at(4)
            << " s (" << (better ? "strictly better" : "NOT better")
            << ").\nRound-robin strands its pre-assigned share of the "
               "work behind every outage; the availability-aware "
               "policy drains queued opens off blocked tracks and "
               "re-routes the jobs, so only in-flight trips feel the "
               "downtime.  The admission-control row additionally "
               "defers bulk (priority 0) jobs while degraded, "
               "trading their latency for the high-priority class.\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    const std::string which = checkExperiment(opts);
    if (!opts.csv) {
        bench::banner("E17/E18 (beyond-paper)",
                      "fault-injection DES vs closed-form availability "
                      "model; fleet operations under correlated "
                      "outages");
    }

    exp::ExperimentRunner runner(bench::runOptions(opts));
    if (which == "e17" || which == "all")
        runE17(runner, opts);
    if (which == "e18" || which == "all")
        runE18(runner, opts);
    return 0;
}
