/**
 * @file
 * Experiments E4/E5 — regenerates the paper's Table VII: DLRM
 * training-iteration comparison between one DHL and the five optical
 * schemes, (a) at a fixed communication power budget and (b) at a fixed
 * iteration time.
 *
 * The DHL's serial round-trip accounting gives the paper's 1.75 kW
 * per-track average power exactly; the compute constant (265 s) is
 * calibrated from the affine structure of the paper's table (DESIGN.md
 * §3).  Absolute times land near the paper's; the scheme-to-scheme
 * ratios match the per-link power ratios by construction, as they do in
 * the paper.
 *
 * Each scheme row of (a) and (b) is one runner scenario over the shared
 * DHL baseline (budget, iteration time), evaluated across --jobs cores.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "mlsim/training_sim.hpp"

using namespace dhl;
using namespace dhl::mlsim;
namespace u = dhl::units;

namespace {

struct PaperRow
{
    const char *scheme;
    double power_kw_a;  ///< Table VII(a) average power.
    double time_a;      ///< Table VII(a) time/iter.
    double slowdown_a;  ///< Table VII(a) slowdown vs DHL.
    double power_kw_b;  ///< Table VII(b) average power.
    double increase_b;  ///< Table VII(b) power increase vs DHL.
};

const PaperRow kPaper[] = {
    {"DHL", 1.75, 1350, 1.0, 1.75, 1.0},
    {"A0", 1.75, 7680, 5.7, 11.2, 6.4},
    {"A1", 1.75, 12500, 9.3, 18.3, 10.5},
    {"A2", 1.75, 26900, 19.9, 39.9, 22.8},
    {"B", 1.75, 93300, 69.1, 139.0, 79.4},
    {"C", 1.75, 159000, 118.0, 237.0, 135.0},
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("Table VII",
                      "DLRM iteration: iso-power (a) and iso-time (b) "
                      "vs one DHL-200-500-256");
    }

    const TrainingWorkload workload = dlrmWorkload();
    DhlComm dhl_comm(core::defaultConfig());
    TrainingSim dhl_sim(workload, dhl_comm);

    // The shared baseline: the average power of one DHL, and the
    // iteration time it affords.  Computed once, captured immutably by
    // every scenario below.
    const double budget = dhl_comm.unitPower();
    const double dhl_time = dhl_sim.isoPower(budget).iter_time;

    //----------------------------------------------------------------
    // (a) iso-power
    //----------------------------------------------------------------
    exp::Experiment iso_power("table7a_iso_power");
    iso_power.add("DHL", [budget, dhl_time](exp::ScenarioContext &)
                             -> exp::ScenarioRows {
        return {{"DHL", cell(u::toKilowatts(budget), 3),
                 cell(dhl_time, 5), "1x", cell(kPaper[0].time_a, 5),
                 "1x"}};
    });
    {
        std::size_t idx = 1;
        for (const auto &route : network::canonicalRoutes()) {
            const PaperRow paper = kPaper[idx++];
            iso_power.add(
                route.name(),
                [route, paper, budget, dhl_time](exp::ScenarioContext &)
                    -> exp::ScenarioRows {
                    const OpticalComm net(route);
                    const TrainingSim sim(dlrmWorkload(), net);
                    const auto r = sim.isoPower(budget);
                    return {{route.name(),
                             cell(u::toKilowatts(budget), 3),
                             cell(r.iter_time, 5),
                             cellTimes(r.iter_time / dhl_time, 3),
                             cell(paper.time_a, 5),
                             cellTimes(paper.slowdown_a, 3)}};
                });
        }
    }

    //----------------------------------------------------------------
    // (b) iso-time
    //----------------------------------------------------------------
    exp::Experiment iso_time("table7b_iso_time");
    iso_time.add("DHL", [budget, dhl_time](exp::ScenarioContext &)
                            -> exp::ScenarioRows {
        return {{"DHL", cell(u::toKilowatts(budget), 3),
                 cell(dhl_time, 5), "1x", cell(kPaper[0].power_kw_b, 3),
                 "1x"}};
    });
    {
        std::size_t idx = 1;
        for (const auto &route : network::canonicalRoutes()) {
            const PaperRow paper = kPaper[idx++];
            iso_time.add(
                route.name(),
                [route, paper, budget, dhl_time](exp::ScenarioContext &)
                    -> exp::ScenarioRows {
                    const OpticalComm net(route);
                    const TrainingSim sim(dlrmWorkload(), net);
                    const double p = sim.powerForIterTime(dhl_time);
                    return {{route.name(), cell(u::toKilowatts(p), 4),
                             cell(dhl_time, 5),
                             cellTimes(p / budget, 3),
                             cell(paper.power_kw_b, 4),
                             cellTimes(paper.increase_b, 3)}};
                });
        }
    }

    const exp::ExperimentRunner runner(bench::runOptions(opts));

    const auto result_a = runner.run(iso_power);
    if (!opts.csv)
        std::cout << "\n(a) Time comparison at fixed average power\n";
    bench::emit(result_a,
                {"Scheme", "Avg power (kW)", "Time/iter (s)", "Slowdown",
                 "Paper time (s)", "Paper slowdown"},
                opts);

    const auto result_b = runner.run(iso_time);
    if (!opts.csv)
        std::cout << "\n(b) Communication power at fixed iteration time\n";
    bench::emit(result_b,
                {"Scheme", "Avg power (kW)", "Time/iter (s)",
                 "Power increase", "Paper power (kW)", "Paper increase"},
                opts);

    if (!opts.csv) {
        DhlComm pipelined(core::defaultConfig(), true);
        TrainingSim pipe_sim(workload, pipelined);
        const auto pr = pipe_sim.iterate(1.0);
        std::cout << "\nNotes:\n"
                  << "  One DHL average power: "
                  << u::formatPower(dhl_comm.unitPower())
                  << " (paper: 1.75 kW)\n"
                  << "  DHL time/iter, serial returns: "
                  << cell(dhl_time, 5) << " s; with §V-B pipelined "
                  << "returns: " << cell(pr.iter_time, 5)
                  << " s (paper: 1350 s)\n"
                  << "  Slowdowns against the pipelined DHL (closer to "
                  << "the paper's accounting):\n    ";
        for (const auto &route : network::canonicalRoutes()) {
            OpticalComm net(route);
            TrainingSim sim(workload, net);
            std::cout << route.name() << " "
                      << cell(sim.isoPower(budget).iter_time /
                                  pr.iter_time, 3)
                      << "x  ";
        }
        std::cout << "(paper: 5.7x / 9.3x / 19.9x / 69.1x / 118x)\n"
                  << "  Scheme-to-scheme ratios follow per-link powers, "
                  << "as in the paper.\n";
    }
    return 0;
}
