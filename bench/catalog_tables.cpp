/**
 * @file
 * Experiment E9 — regenerates the paper's background catalogues:
 * Table I (large emerging datasets), Table II (storage devices),
 * Table III (network component power), Table IV (large ML models).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "network/catalog.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("Tables I-IV",
                      "background catalogues driving every experiment");
    }

    //----------------------------------------------------------------
    // Table I
    //----------------------------------------------------------------
    TextTable t1({"Name", "Size", "Creation rate", "Type"});
    for (const auto &d : storage::datasetCatalog()) {
        t1.addRow({d.name,
                   d.size > 0 ? u::formatBytes(d.size) : "-",
                   d.creation_rate > 0
                       ? u::formatBandwidth(d.creation_rate)
                       : "-",
                   to_string(d.kind)});
    }
    if (!csv)
        std::cout << "\nTable I: large emerging datasets\n";
    bench::emit(t1, csv);

    //----------------------------------------------------------------
    // Table II
    //----------------------------------------------------------------
    TextTable t2({"Device", "Size", "Package", "Weight (g)",
                  "Read (MB/s)", "Write (MB/s)", "TB/kg"});
    for (const auto &d : storage::deviceCatalog()) {
        t2.addRow({d.name, u::formatBytes(d.capacity),
                   to_string(d.form_factor), cell(u::toGrams(d.mass), 4),
                   cell(d.seq_read_bw / 1e6, 4),
                   cell(d.seq_write_bw / 1e6, 4),
                   cell(d.bytesPerKg() / 1e12, 4)});
    }
    if (!csv)
        std::cout << "\nTable II: currently available storage\n";
    bench::emit(t2, csv);

    //----------------------------------------------------------------
    // Table III
    //----------------------------------------------------------------
    TextTable t3({"Component", "Speed (Gbit/s)", "Ports",
                  "Power low (W)", "Power high (W)", "Paper default"});
    for (const auto &c : network::componentCatalog()) {
        t3.addRow({c.name, cell(c.speed / 1e9, 4),
                   c.ports ? std::to_string(c.ports) : "N/A",
                   cell(c.power_low, 5), cell(c.power_high, 5),
                   c.paper_default ? "yes" : "no"});
    }
    if (!csv)
        std::cout << "\nTable III: networking power characterisation\n";
    bench::emit(t3, csv);

    //----------------------------------------------------------------
    // Table IV
    //----------------------------------------------------------------
    TextTable t4({"Model", "Parameters", "Size", "From", "Year"});
    for (const auto &m : storage::mlModelCatalog()) {
        t4.addRow({m.name, cell(m.parameters / 1e9, 5) + "B",
                   u::formatBytes(m.size), m.origin,
                   std::to_string(m.year)});
    }
    if (!csv)
        std::cout << "\nTable IV: ML models with significant storage\n";
    bench::emit(t4, csv);
    return 0;
}
