/**
 * @file
 * Experiment E8 — regenerates the paper's §V-E minimum-specification
 * analysis: the smallest dataset and distance at which a DHL beats a
 * single optical link, including the paper's 360 GB / 10 m/s / 10 m
 * anchor point, plus a break-even frontier sweep.
 *
 * One runner scenario per track length (each sweeping all speeds),
 * evaluated across --jobs cores; row groups per length as before.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/comparison.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("§V-E",
                      "minimum specifications for DHL to outperform a "
                      "400 Gbit/s optical link (A0)");
    }

    //----------------------------------------------------------------
    // The paper's anchor: a 10 m DHL at 10 m/s.
    //----------------------------------------------------------------
    if (!opts.csv) {
        DhlConfig tiny = makeConfig(10.0, 10.0, 32);
        const AnalyticalModel m(tiny);
        const auto lm = m.launch();
        const auto be = breakEven(tiny, network::findRoute("A0"));
        std::cout << "\nAnchor (paper: 360 GB carts, 10 m/s, 10 m, "
                  << "7.2 s one-way, 144 J on A0):\n"
                  << "  one-way trip time: "
                  << cell(lm.trip_time.value(), 4)
                  << " s (paper: 7.2 s)\n"
                  << "  launch energy: " << cell(lm.energy.value(), 3)
                  << " J (minuscule vs the link's "
                  << cell((network::findRoute("A0").power() *
                           lm.trip_time)
                              .value(),
                          4)
                  << " J over the same window; paper: 144 J)\n"
                  << "  break-even dataset (time): "
                  << u::formatBytes(be.bytes_for_time)
                  << " (paper: ~360 GB)\n"
                  << "  break-even dataset (energy): "
                  << u::formatBytes(be.bytes_for_energy) << "\n"
                  << "  => DHL wins from "
                  << u::formatBytes(be.bytes_to_win())
                  << " over >= 10 m\n";
    }

    //----------------------------------------------------------------
    // The frontier: sweep distance and speed, one scenario per length.
    //----------------------------------------------------------------
    const std::vector<double> lengths = {10, 20, 50, 100, 200, 500, 1000};
    const std::vector<double> speeds = {10, 20, 50, 100, 200, 300};

    exp::Experiment frontier("sec5e_crossover");
    for (const double length : lengths) {
        frontier.add(
            "L" + cell(length, 5),
            [length, speeds](exp::ScenarioContext &) -> exp::ScenarioRows {
                exp::ScenarioRows rows;
                for (const auto &p : crossoverSweep({length}, speeds)) {
                    rows.push_back(
                        {cell(p.track_length.value(), 5),
                         cell(p.max_speed.value(), 4),
                         cell(p.trip_time.value(), 4),
                         cell(p.launch_energy.value(), 4),
                         cell(p.vs_a0.bytes_for_time.value() / 1e9, 4),
                         cell(p.vs_a0.bytes_for_energy.value() / 1e9,
                              4),
                         cell(p.vs_a0.bytes_to_win().value() / 1e9,
                              4)});
                }
                return rows;
            },
            true);
    }

    const exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(frontier);
    bench::emit(result,
                {"Length (m)", "Speed (m/s)", "Trip (s)", "Launch (J)",
                 "Break-even time (GB)", "Break-even energy (GB)",
                 "DHL wins from (GB)"},
                opts);

    if (!opts.csv) {
        std::cout << "\nReading the frontier: the docking floor (6 s) "
                  << "dominates short tracks, so the time break-even "
                  << "hovers near 6 s x 50 GB/s = 300 GB and grows with "
                  << "distance/speed; the energy break-even only binds "
                  << "for fast, heavy launches.\n";
    }
    return 0;
}
