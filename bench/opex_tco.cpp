/**
 * @file
 * Experiment E14 (beyond-paper) — total cost of ownership: extends the
 * paper's Table VIII capex argument ("a DHL costs about one large
 * 400 Gbit/s switch") with the energy opex of a recurring bulk-transfer
 * duty, per DHL configuration and per route class.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "cost/opex.hpp"

using namespace dhl;
using namespace dhl::cost;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("E14 (TCO extension of Table VIII)",
                      "capex + 5-year energy opex for a 4x2 PB/day "
                      "backup duty");
    }

    TcoModel model;
    TransferDuty duty{};
    duty.bytes_per_transfer = u::petabytes(2);
    duty.transfers_per_day = 4.0;
    duty.years = 5.0;

    TextTable table({"DHL config", "vs route", "DHL capex", "DHL opex/yr",
                     "DHL 5yr total", "Net capex", "Net opex/yr",
                     "Net 5yr total", "Payback"});

    const std::vector<core::DhlConfig> cfgs = {
        core::makeConfig(100, 500, 64), // most efficient
        core::defaultConfig(),
        core::makeConfig(300, 1000, 64), // fastest, longest
    };
    for (const auto &cfg : cfgs) {
        for (const char *route : {"A0", "B", "C"}) {
            const auto cmp =
                model.compare(cfg, network::findRoute(route), duty);
            table.addRow(
                {cfg.label(), route, "$" + cell(cmp.dhl.capex, 5),
                 "$" + cell(cmp.dhl.opex_per_year, 4),
                 "$" + cell(cmp.dhl.total, 5),
                 "$" + cell(cmp.network.capex, 5),
                 "$" + cell(cmp.network.opex_per_year, 4),
                 "$" + cell(cmp.network.total, 5),
                 cmp.payback_days == 0.0
                     ? "immediate"
                     : cell(cmp.payback_days, 4) + " days"});
        }
        if (!csv)
            table.addSeparator();
    }
    bench::emit(table, csv);

    if (!csv) {
        std::cout << "\nReading: at $0.10/kWh the network's energy bill "
                     "for this duty runs hundreds to thousands of "
                     "dollars a year; the DHL's runs cents to a few "
                     "dollars.  Since the DHL build (Table VIII) is "
                     "also at or below the switch's price, payback is "
                     "immediate in the default setup.\n";
    }
    return 0;
}
