/**
 * @file
 * Shared helpers for the table-regeneration harness: --csv flag parsing
 * and a uniform header banner.
 */

#ifndef DHL_BENCH_BENCH_UTIL_HPP
#define DHL_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace dhl {
namespace bench {

/** True if the user asked for CSV output. */
inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    }
    return false;
}

/** Print a banner naming the regenerated paper artefact. */
inline void
banner(const std::string &artefact, const std::string &description)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << artefact << " — " << description << "\n"
              << "Paper: \"The Case For Data Centre Hyperloops\" (ISCA "
                 "2024)\n"
              << "==========================================================="
                 "=====================\n";
}

/** Emit a table as text or CSV per the flag. */
inline void
emit(const TextTable &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

} // namespace bench
} // namespace dhl

#endif // DHL_BENCH_BENCH_UTIL_HPP
