/**
 * @file
 * Shared helpers for the table-regeneration harness: flag parsing
 * (--csv, --jobs N, --seed N, --experiment NAME), a uniform header
 * banner, and table emission.
 *
 * All row formatting lives with the models (e.g. mlsim::sweepRows) or
 * inside the bench's scenario closures; the benches build scenario
 * lists, submit them to an exp::ExperimentRunner, and emit the
 * runner's result table here.  Serial (--jobs 1) and parallel runs
 * print byte-identical tables.
 */

#ifndef DHL_BENCH_BENCH_UTIL_HPP
#define DHL_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "exp/experiment_runner.hpp"

namespace dhl {
namespace bench {

/** Parsed harness options shared by every table regenerator. */
struct Options
{
    bool csv = false;      ///< Emit CSV instead of the boxed table.
    std::size_t jobs = 0;  ///< Scenario parallelism; 0 = all cores.
    std::uint64_t seed = 0; ///< Master seed; 0 = the bench's default.
    std::string experiment; ///< Experiment selector; empty = all.
    std::size_t des_shards = 1; ///< Intra-run DES shards (>= 1).
};

/** Parse an integer flag operand; prints an error and exits on
 *  garbage. */
inline std::uint64_t
parseCount(const char *flag, const char *value)
{
    bool numeric = *value != '\0';
    for (const char *p = value; numeric && *p; ++p)
        numeric = *p >= '0' && *p <= '9';
    if (!numeric) {
        std::cerr << "error: " << flag << " expects an integer, got '"
                  << value << "'\n";
        std::exit(2);
    }
    return std::stoull(value);
}

/** Parse a --jobs operand; prints an error and exits on garbage. */
inline std::size_t
parseJobs(const char *value)
{
    return static_cast<std::size_t>(parseCount("--jobs", value));
}

/** Parse a --des-shards operand (>= 1); prints an error and exits on
 *  garbage or zero. */
inline std::size_t
parseDesShards(const char *value)
{
    const std::uint64_t n = parseCount("--des-shards", value);
    if (n == 0) {
        std::cerr << "error: --des-shards must be at least 1\n";
        std::exit(2);
    }
    return static_cast<std::size_t>(n);
}

/** Parse --csv, --jobs N / --jobs=N, --seed N / --seed=N,
 *  --experiment NAME / --experiment=NAME and --des-shards N /
 *  --des-shards=N.  Any other `--` flag is an error (exit 2): a typo
 *  silently ignored here would regenerate the wrong table. */
inline Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            opts.jobs = parseJobs(argv[++i]);
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opts.jobs = parseJobs(arg + 7);
        } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
            opts.seed = parseCount("--seed", argv[++i]);
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            opts.seed = parseCount("--seed", arg + 7);
        } else if (std::strcmp(arg, "--experiment") == 0 &&
                   i + 1 < argc) {
            opts.experiment = argv[++i];
        } else if (std::strncmp(arg, "--experiment=", 13) == 0) {
            opts.experiment = arg + 13;
        } else if (std::strcmp(arg, "--des-shards") == 0 &&
                   i + 1 < argc) {
            opts.des_shards = parseDesShards(argv[++i]);
        } else if (std::strncmp(arg, "--des-shards=", 13) == 0) {
            opts.des_shards = parseDesShards(arg + 13);
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::cerr << "error: unknown flag '" << arg << "'\n";
            std::exit(2);
        }
    }
    return opts;
}

/** The bench's seed: the --seed flag if given, else @p fallback.  The
 *  fallback preserves each bench's historical default stream, so an
 *  unflagged run stays byte-identical to pre-flag output. */
inline std::uint64_t
seedOr(const Options &opts, std::uint64_t fallback)
{
    return opts.seed != 0 ? opts.seed : fallback;
}

/** True if the user asked for CSV output (shorthand for parseArgs). */
inline bool
wantCsv(int argc, char **argv)
{
    return parseArgs(argc, argv).csv;
}

/** Runner options for the parsed flags. */
inline exp::RunOptions
runOptions(const Options &opts)
{
    exp::RunOptions ro;
    ro.jobs = opts.jobs;
    return ro;
}

/** Print a banner naming the regenerated paper artefact. */
inline void
banner(const std::string &artefact, const std::string &description)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << artefact << " — " << description << "\n"
              << "Paper: \"The Case For Data Centre Hyperloops\" (ISCA "
                 "2024)\n"
              << "==========================================================="
                 "=====================\n";
}

/** Emit a table as text or CSV per the flag. */
inline void
emit(const TextTable &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/**
 * Emit an experiment result: render through common/table with group
 * separators in text mode (CSV skips them, as before).
 */
inline void
emit(const exp::ExperimentResult &result,
     std::vector<std::string> headers, const Options &opts)
{
    emit(result.table(std::move(headers), !opts.csv), opts.csv);
}

} // namespace bench
} // namespace dhl

#endif // DHL_BENCH_BENCH_UTIL_HPP
