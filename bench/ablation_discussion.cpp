/**
 * @file
 * Experiment E12 — ablations over the paper's Discussion (§VI)
 * features, each applied to the default DHL moving the 29 PB dataset:
 *
 *   - dual-track design (one tube per direction, pipelined returns)
 *   - passive eddy-current braking ("essentially halving DHL's power")
 *   - regenerative braking at 16 % and 70 % recovery
 *   - docking-time sensitivity (the paper calls 3 s pessimistic)
 *   - docking-station pipelining depth with SSD read time included
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

namespace {

void
addRow(TextTable &table, const std::string &name,
       const AnalyticalModel &model, double dataset,
       const BulkOptions &opts, double base_time, double base_energy)
{
    const auto b = model.bulk(dhl::qty::Bytes{dataset}, opts);
    table.addRow({name, cell(b.total_time.value(), 5),
                  cell(u::toMegajoules(b.total_energy), 4),
                  cell(u::toKilowatts(b.avg_power.value()), 4),
                  cellTimes(base_time / b.total_time.value(), 3),
                  cellTimes(base_energy / b.total_energy.value(), 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("E12 (Discussion §VI ablations)",
                      "what each proposed refinement buys on the 29 PB "
                      "move");
    }

    const double dataset = storage::referenceDlrmDataset().size;
    const DhlConfig base_cfg = defaultConfig();
    const AnalyticalModel base(base_cfg);
    const auto base_bulk = base.bulk(dhl::qty::Bytes{dataset});
    const double t0 = base_bulk.total_time.value();
    const double e0 = base_bulk.total_energy.value();

    TextTable table({"Variant", "Time (s)", "Energy (MJ)",
                     "Avg power (kW)", "Time gain", "Energy gain"});

    addRow(table, "baseline (serial, active LIM brake)", base, dataset,
           {}, t0, e0);

    // Dual track with pipelined returns.
    {
        DhlConfig cfg = base_cfg;
        cfg.track_mode = TrackMode::DualTrack;
        cfg.docking_stations = 4;
        BulkOptions opts;
        opts.pipelined = true;
        addRow(table, "dual track, 4 stations, pipelined",
               AnalyticalModel(cfg), dataset, opts, t0, e0);
    }

    // Eddy-current passive brake.
    {
        DhlConfig cfg = base_cfg;
        cfg.lim.braking = dhl::physics::BrakingMode::EddyCurrent;
        addRow(table, "eddy-current brake (passive)",
               AnalyticalModel(cfg), dataset, {}, t0, e0);
    }

    // Regenerative braking bounds.
    for (double frac : {0.16, 0.70}) {
        DhlConfig cfg = base_cfg;
        cfg.lim.braking = dhl::physics::BrakingMode::Regenerative;
        cfg.lim.regen_fraction = frac;
        addRow(table,
               "regenerative brake (" + cell(frac * 100.0, 2) + "%)",
               AnalyticalModel(cfg), dataset, {}, t0, e0);
    }

    // Docking-time sensitivity.
    for (double dock : {1.0, 2.0, 5.0}) {
        DhlConfig cfg = base_cfg;
        cfg.dock_time = dock;
        addRow(table, "dock/undock = " + cell(dock, 2) + " s",
               AnalyticalModel(cfg), dataset, {}, t0, e0);
    }

    // Pipelining depth with SSD reads included.
    for (std::size_t stations : {1u, 2u, 4u, 8u}) {
        DhlConfig cfg = base_cfg;
        cfg.track_mode = TrackMode::DualTrack;
        cfg.docking_stations = stations;
        BulkOptions opts;
        opts.pipelined = true;
        opts.include_read_time = true;
        addRow(table,
               "dual track + reads, " + std::to_string(stations) +
                   " station(s)",
               AnalyticalModel(cfg), dataset, opts, t0, e0);
    }

    bench::emit(table, csv);

    if (!csv) {
        std::cout
            << "\nReadings:\n"
            << "  - The eddy-current brake halves energy at no time "
               "cost (the Discussion's claim).\n"
            << "  - Docking time dominates the trip (6 s of 8.6 s), so "
               "faster docking is the biggest serial-time lever.\n"
            << "  - With reads included, station count is the pipeline "
               "depth: returns hide behind the ~19-minute cart read.\n";
    }
    return 0;
}
