/**
 * @file
 * Experiment E7 — regenerates the paper's Table VIII: the commodity
 * materials cost of a DHL (rail per distance, accelerator per top
 * speed, overall matrix).
 */

#include <iostream>

#include "bench_util.hpp"
#include "cost/cost_model.hpp"

using namespace dhl;
using namespace dhl::cost;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("Table VIII",
                      "commodity cost of the DHL materials (May 2023 "
                      "prices)");
    }

    CostModel model;
    const double distances[] = {100.0, 500.0, 1000.0};
    const double speeds[] = {100.0, 200.0, 300.0};

    //----------------------------------------------------------------
    // (a) rail cost per distance
    //----------------------------------------------------------------
    TextTable a({"Material", "USD/kg", "100 m", "500 m", "1000 m"});
    const auto &prices = model.prices();
    auto row = [&](const char *name, double price, auto pick) {
        std::vector<std::string> cells{name, cell(price, 3)};
        for (double d : distances)
            cells.push_back("$" + cell(pick(model.railCost(d)), 4));
        a.addRow(std::move(cells));
    };
    row("Aluminium", prices.aluminium_per_kg,
        [](const RailCost &c) { return c.aluminium; });
    row("PVC (rail)", prices.pvc_per_kg,
        [](const RailCost &c) { return c.pvc_rail; });
    row("PVC (vacuum tube)", prices.pvc_per_kg,
        [](const RailCost &c) { return c.pvc_tube; });
    row("Total", 0.0, [](const RailCost &c) { return c.total(); });
    if (!csv)
        std::cout << "\n(a) Total rail cost (paper totals: $733 / "
                     "$3,665 / $7,330)\n";
    bench::emit(a, csv);

    //----------------------------------------------------------------
    // (b) accelerator/decelerator cost per top speed
    //----------------------------------------------------------------
    TextTable b({"Component", "100 m/s", "200 m/s", "300 m/s"});
    {
        std::vector<std::string> copper{"Copper wire"};
        std::vector<std::string> vfd{"VFD"};
        std::vector<std::string> total{"Total"};
        for (double v : speeds) {
            const LimCost c = model.limCost(v);
            copper.push_back("$" + cell(c.copper, 4));
            vfd.push_back("$" + cell(c.vfd, 4));
            total.push_back("$" + cell(c.total(), 5));
        }
        b.addRow(std::move(copper));
        b.addRow(std::move(vfd));
        b.addRow(std::move(total));
    }
    if (!csv)
        std::cout << "\n(b) Accelerator/decelerator cost (paper totals: "
                     "$8,792 / $10,904 / $14,512)\n";
    bench::emit(b, csv);

    //----------------------------------------------------------------
    // (c) overall total
    //----------------------------------------------------------------
    TextTable c({"Distance (m)", "100 m/s", "200 m/s", "300 m/s"});
    for (double d : distances) {
        std::vector<std::string> cells{cell(d, 4)};
        for (double v : speeds)
            cells.push_back("$" + cell(model.totalCost(d, v), 5));
        c.addRow(std::move(cells));
    }
    if (!csv) {
        std::cout << "\n(c) Overall total cost (paper: $9,525..$21,842; "
                     "~ one large 400 Gbit/s switch)\n";
    }
    bench::emit(c, csv);
    return 0;
}
