/**
 * @file
 * Experiment E11 — cross-validation of the event-driven DHL simulation
 * against the closed-form Table VI model: every design-space
 * configuration is replayed cart-by-cart in the DES and must land on
 * the analytical time/energy exactly.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "dhl/analytical.hpp"
#include "dhl/fleet.hpp"
#include "dhl/simulation.hpp"
#include "mlsim/comm_layer.hpp"

using namespace dhl;
using namespace dhl::core;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("E11 (beyond-paper)",
                      "event-driven simulation vs closed-form Table VI "
                      "model");
    }

    TextTable table({"Config", "Carts", "DES time (s)", "Model time (s)",
                     "DES energy (kJ)", "Model energy (kJ)",
                     "Max rel err"});

    for (const auto &row : tableViRows()) {
        const DhlConfig &cfg = row.config;
        // ~8 carts of data (last one partial) keeps the DES quick while
        // exercising the full trip loop.
        const double dataset =
            8.0 * cfg.cartCapacity().value() - u::terabytes(3);

        DhlSimulation des(cfg);
        const auto sim_result = des.runBulkTransfer(dataset);
        const AnalyticalModel model(cfg);
        const auto closed = model.bulk(dhl::qty::Bytes{dataset});

        const double time_err =
            std::abs(sim_result.total_time - closed.total_time.value()) /
            closed.total_time.value();
        const double energy_err =
            std::abs(sim_result.total_energy -
                     closed.total_energy.value()) /
            closed.total_energy.value();
        table.addRow({cfg.label(), std::to_string(sim_result.carts),
                      cell(sim_result.total_time, 6),
                      cell(closed.total_time.value(), 6),
                      cell(u::toKilojoules(sim_result.total_energy), 5),
                      cell(u::toKilojoules(closed.total_energy.value()),
                           5),
                      cell(std::max(time_err, energy_err), 3)});
    }
    bench::emit(table, csv);

    if (!csv) {
        std::cout << "\nThe DES reproduces the closed form exactly "
                     "(errors at double-precision rounding) because "
                     "serial bulk transfers share the same kinematics "
                     "and LIM energy accounting.\n";

        // Fleet cross-check: K parallel tracks vs mlsim's quantised
        // formula (2 * ceil(trips/K) * t_trip).
        const DhlConfig cfg = defaultConfig();
        const double dataset = u::petabytes(2.9); // 12 carts
        dhl::mlsim::DhlComm comm(cfg);
        std::cout << "\nFleet validation (12 carts over K tracks):\n";
        for (std::size_t k : {1u, 2u, 3u, 4u, 6u}) {
            DhlFleet fleet(cfg, k);
            const auto r = fleet.runBulkTransfer(dataset);
            const double closed =
                comm.ingestionTime(dataset, static_cast<double>(k));
            std::cout << "  K=" << k << ": DES "
                      << cell(r.total_time, 6) << " s vs closed form "
                      << cell(closed, 6) << " s\n";
        }
    }
    return 0;
}
