/**
 * @file
 * Experiment E1/E10 — regenerates the right-hand table of the paper's
 * Figure 2: the energy of moving 29 PB over the five canonical network
 * routes at 400 Gbit/s, plus the §II-C wall-clock and parallelisation
 * narrative anchors.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "network/route.hpp"
#include "network/transfer.hpp"
#include "storage/catalog.hpp"

using namespace dhl;
namespace u = dhl::units;

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);
    if (!csv) {
        bench::banner("Figure 2 (right) + §II-C",
                      "network energy to move 29 PB at 400 Gbit/s");
    }

    const double dataset = storage::referenceDlrmDataset().size;
    // Paper-reported energies for the five routes, MJ.
    const double paper_mj[] = {13.92, 22.97, 50.05, 174.75, 299.45};

    TextTable table({"Option", "Route power (W)", "Time",
                     "Energy (MJ)", "Paper (MJ)", "Delta"});
    std::size_t i = 0;
    for (const auto &route : network::canonicalRoutes()) {
        const network::TransferModel model(route);
        const auto r = model.transfer(dhl::qty::Bytes{dataset});
        const double mj = u::toMegajoules(r.energy);
        table.addRow({route.name(), cell(r.power.value(), 6),
                      u::formatDuration(r.time), cell(mj, 5),
                      cell(paper_mj[i], 5),
                      cell(100.0 * (mj - paper_mj[i]) / paper_mj[i], 2) +
                          "%"});
        ++i;
    }
    bench::emit(table, csv);

    if (!csv) {
        const network::TransferModel a0(network::findRoute("A0"));
        const auto single = a0.transfer(dhl::qty::Bytes{dataset});
        std::cout << "\n§II-C anchors:\n"
                  << "  29 PB over one 400 Gbit/s link: "
                  << u::formatDuration(single.time) << " ("
                  << cell(single.time.value(), 6)
                  << " s; paper: 580k s / 6.71 "
                  << "days)\n"
                  << "  Speedup needed for a 1-hour transfer: "
                  << cell(a0.speedupForTargetTime(dhl::qty::Bytes{dataset},
                                                  dhl::qty::hours(1.0)),
                          4)
                  << "x (paper: 161x, > 64 Tbit/s)\n"
                  << "  Disks to carry 29 PB by hand: "
                  << cell(std::ceil(
                             dataset /
                             storage::findDevice("WD Gold").capacity), 4)
                  << " x 24 TB HDD or "
                  << cell(std::ceil(
                             dataset /
                             storage::findDevice("Nimbus ExaDrive")
                                 .capacity), 4)
                  << " x 100 TB SSD (paper: 1319 x 22 TB / 290 x 100 "
                  << "TB)\n";
    }
    return 0;
}
