/**
 * @file
 * Experiment E15 (beyond-paper) — quantifies the paper's §II-D use
 * cases with synthetic workloads: a day of periodic backups, a physics
 * burst campaign, and a month of Zipf-popular ML dataset staging, each
 * replayed against (a) the closed-form DHL, (b) a single optical link
 * per route, and (c) the event-driven DHL with queueing.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "workloads/replay.hpp"

using namespace dhl;
using namespace dhl::workloads;
namespace u = dhl::units;

namespace {

void
addScenario(TextTable &table, const std::string &name,
            const std::vector<TransferRequest> &requests,
            const core::DhlConfig &cfg)
{
    const auto dhl_closed = replayDhlAnalytical(requests, cfg);
    const auto dhl_des = replayDhlSimulated(requests, cfg);
    const auto net_b =
        replayNetworkAnalytical(requests, network::findRoute("B"));

    table.addRow({name + " / DHL (model)",
                  std::to_string(dhl_closed.requests),
                  u::formatBytes(dhl_closed.bytes),
                  u::formatDuration(dhl_closed.makespan),
                  u::formatDuration(dhl_closed.mean_latency),
                  u::formatEnergy(dhl_closed.energy)});
    table.addRow({name + " / DHL (DES)",
                  std::to_string(dhl_des.requests),
                  u::formatBytes(dhl_des.bytes),
                  u::formatDuration(dhl_des.makespan),
                  u::formatDuration(dhl_des.mean_latency),
                  u::formatEnergy(dhl_des.energy)});
    table.addRow({name + " / network B",
                  std::to_string(net_b.requests),
                  u::formatBytes(net_b.bytes),
                  u::formatDuration(net_b.makespan),
                  u::formatDuration(net_b.mean_latency),
                  u::formatEnergy(net_b.energy)});
    table.addSeparator();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    const bool csv = opts.csv;
    if (!csv) {
        bench::banner("E15 (workload study, §II-D)",
                      "synthetic backup / physics / ML-staging "
                      "campaigns, DHL vs optical");
    }

    Rng rng(bench::seedOr(opts, 2024));
    TextTable table({"Scenario / scheme", "Requests", "Bytes",
                     "Makespan", "Mean latency", "Energy"});

    // §II-D2: a day of 2 PB backups every 6 hours.
    {
        PeriodicBackupGenerator gen(u::hours(6), u::petabytes(2));
        addScenario(table, "backups",
                    gen.generate(u::days(1), rng),
                    core::defaultConfig());
    }

    // §II-D1: two hours of 150 TB/s x 4 s detector bursts, 20 min
    // apart, on a long fast DHL.
    {
        BurstSourceGenerator gen(u::terabytes(150), 4.0, u::minutes(20));
        addScenario(table, "physics",
                    gen.generate(u::hours(2), rng),
                    core::makeConfig(300, 1000, 64));
    }

    // §II-D3: a week of ML dataset staging, Zipf-popular over three
    // training sets (scaled-down sizes keep the DES brisk).
    {
        ZipfDatasetGenerator gen({{"dlrm", u::terabytes(512)},
                                  {"nlp", u::terabytes(256)},
                                  {"vision", u::terabytes(256)}},
                                 u::hours(4), 1.0);
        addScenario(table, "ml-staging",
                    gen.generate(u::days(7), rng),
                    core::defaultConfig());
    }

    bench::emit(table, csv);

    if (!csv) {
        std::cout << "\nReading: the DES matches the closed form when "
                     "requests are spaced (backups), and beats it "
                     "slightly on bursty arrivals by overlapping a "
                     "return flight with the next library undock.  The "
                     "network's makespans run 100-300x longer at 6-50x "
                     "the energy.\n";
    }
    return 0;
}
