/**
 * @file
 * Experiment E19 — open-loop serving study (beyond-paper).
 *
 * The paper's evaluation moves fixed datasets; a DHL deployed as a
 * *service* instead faces a load profile — ramp up, sustained peak,
 * ramp down — on a fleet that is simultaneously losing components,
 * taking maintenance windows, and sharing vacuum plants.  E19 runs the
 * same staged profile on a degraded 4-track fleet under each dispatch
 * policy and reports per-stage SLO outcomes (tail latency, per-stage
 * availability, goodput, deferrals and shed load).
 *
 * The final scenario is the checkpoint oracle: the same serve run is
 * executed uninterrupted, and checkpointed/restored at every epoch
 * boundary, and the two must produce byte-identical SLO tables, totals,
 * and a byte-identical re-checkpoint.  This is the property the DES
 * epoch/snapshot layer (DESIGN.md §11) guarantees, demoted from a test
 * to a standing table row so soak runs notice a regression immediately.
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "exp/slo.hpp"
#include "serve/serving.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

/** The shared E19 environment: a degraded 4-track fleet.  des_shards
 *  partitions the fleet DES across cores; the emitted table is
 *  byte-identical for every value (CI compares 1 vs 4). */
serve::ServeConfig
e19Config(ops::DispatchPolicy policy, int min_priority_degraded,
          std::size_t des_shards)
{
    serve::ServeConfig cfg;
    cfg.dhl = core::defaultConfig();
    cfg.dhl.docking_stations = 2;
    cfg.tracks = 4;
    cfg.seed = 19;
    cfg.epoch = 600.0;
    cfg.carts_per_track = 4;
    cfg.max_pending = 256;
    cfg.policy = policy;
    cfg.min_priority_degraded = min_priority_degraded;
    cfg.des_shards = des_shards;

    // Staged profile: 20 min ramp to peak, 40 min hold, 20 min drain.
    // Two request classes: bulk (priority 0) and a smaller
    // latency-sensitive class (priority 1) that survives degraded-mode
    // admission under the availability policy.
    workloads::RequestClass bulk{"bulk", 3.0, u::gigabytes(192), 0.0, 0};
    workloads::RequestClass urgent{"urgent", 1.0, u::gigabytes(32), 0.0,
                                   1};
    cfg.stages = {
        workloads::StageSpec{"ramp", 1200.0, 0.0, 0.35, {bulk, urgent}},
        workloads::StageSpec{"peak", 2400.0, 0.35, 0.35, {bulk, urgent}},
        workloads::StageSpec{"drain", 1200.0, 0.35, 0.0, {bulk, urgent}},
    };

    // Accelerated component faults so outages land within the run.
    cfg.faults.enabled = true;
    cfg.faults.seed = 19;
    cfg.faults.lim_mtbf = 2.0;
    cfg.faults.lim_mttr = 0.1;
    cfg.faults.track_mtbf = 4.0;
    cfg.faults.track_mttr = 0.2;
    cfg.faults.station_mtbf = 3.0;
    cfg.faults.station_mttr = 0.05;
    cfg.faults.cart_repair_per_trip = 5e-3;
    cfg.faults.cart_repair_hours = 0.05;

    // One planned window on track 2, and shared plants two tracks wide
    // tripping within the hour.
    cfg.maintenance.windows.push_back({1500.0, 300.0, 0.0, 2});
    cfg.domains.enabled = true;
    cfg.domains.domain_size = 2;
    cfg.domains.plant_mtbf = 0.5;
    cfg.domains.plant_mttr = 0.05;
    cfg.domains.seed = 19;
    return cfg;
}

/** Per-stage SLO rows for one policy, prefixed with the policy name. */
exp::Scenario
policyScenario(std::string name, ops::DispatchPolicy policy,
               int min_priority_degraded, std::size_t des_shards)
{
    exp::Scenario s;
    s.name = name;
    s.separator_after = true;
    s.run = [name, policy, min_priority_degraded,
             des_shards](exp::ScenarioContext &) {
        serve::ServingSim sim(
            e19Config(policy, min_priority_degraded, des_shards));
        sim.run();
        exp::ScenarioRows rows;
        for (const exp::StageSlo &stage : sim.sloTable()) {
            std::vector<std::string> row{name};
            for (std::string &c : exp::sloRow(stage))
                row.push_back(std::move(c));
            rows.push_back(std::move(row));
        }
        return rows;
    };
    return s;
}

/** Serialise everything the oracle compares: the formatted SLO table
 *  plus the fleet totals. */
std::string
outcomeDigest(serve::ServingSim &sim)
{
    std::ostringstream os;
    for (const exp::StageSlo &stage : sim.sloTable())
        for (const std::string &c : exp::sloRow(stage))
            os << c << "|";
    os << sim.totalServed() << "|" << sim.totalShed() << "|"
       << sim.totalLaunches() << "|" << sim.totalEnergy() << "|"
       << sim.now() << "|" << sim.epochsCompleted();
    return os.str();
}

/** The checkpoint oracle: restore(checkpoint)+run == uninterrupted
 *  run, byte for byte, at every epoch boundary. */
exp::Scenario
checkpointOracleScenario(std::size_t des_shards)
{
    exp::Scenario s;
    s.name = "checkpoint oracle";
    s.run = [des_shards](exp::ScenarioContext &) {
        const auto cfg = e19Config(ops::DispatchPolicy::AvailabilityAware,
                                   1, des_shards);

        serve::ServingSim oracle(cfg);
        oracle.run();
        const std::string want = outcomeDigest(oracle);
        std::ostringstream want_ck;
        oracle.checkpoint(want_ck);

        // Hop through a checkpoint at every epoch boundary: each
        // epoch's state round-trips into a freshly built fleet.
        auto hopper = std::make_unique<serve::ServingSim>(cfg);
        std::size_t hops = 0;
        while (hopper->stepEpoch()) {
            std::stringstream ck;
            hopper->checkpoint(ck);
            auto fresh = std::make_unique<serve::ServingSim>(cfg);
            fresh->restore(ck);
            hopper = std::move(fresh);
            ++hops;
        }
        const std::string got = outcomeDigest(*hopper);
        std::ostringstream got_ck;
        hopper->checkpoint(got_ck);

        const bool identical =
            want == got && want_ck.str() == got_ck.str();
        exp::ScenarioRows rows;
        rows.push_back({"checkpoint oracle",
                        std::to_string(hops) + " hops",
                        identical ? "byte-identical" : "DIVERGED", "",
                        "", "", "", "", "", "", ""});
        if (!identical) {
            std::cerr << "E19 checkpoint oracle diverged!\n"
                      << "  want: " << want << "\n"
                      << "  got:  " << got << "\n";
            std::exit(1);
        }
        return rows;
    };
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("E19 (beyond-paper)",
                      "open-loop serving: staged load on a degraded "
                      "fleet, per-stage SLOs, checkpoint oracle");
    }

    exp::Experiment e19("e19");
    e19.add(policyScenario("round-robin", ops::DispatchPolicy::RoundRobin,
                           0, opts.des_shards));
    e19.add(policyScenario("least-queued",
                           ops::DispatchPolicy::LeastQueued, 0,
                           opts.des_shards));
    e19.add(policyScenario("availability",
                           ops::DispatchPolicy::AvailabilityAware, 1,
                           opts.des_shards));
    e19.add(checkpointOracleScenario(opts.des_shards));

    exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(e19);

    std::vector<std::string> headers{"Policy"};
    for (std::string &h : exp::sloHeaders())
        headers.push_back(std::move(h));
    bench::emit(result, std::move(headers), opts);

    if (!opts.csv) {
        std::cout << "\nPer-stage availability is the per-track mean "
                     "over the stage window; goodput is delivered "
                     "bytes / stage duration.  The checkpoint-oracle "
                     "row re-runs the availability scenario hopping "
                     "through a checkpoint at every epoch boundary "
                     "and byte-compares tables, totals, and the final "
                     "checkpoint.\n";
    }
    return 0;
}
