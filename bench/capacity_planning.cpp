/**
 * @file
 * Experiment E21 — Monte-Carlo capacity planning (beyond-paper).
 *
 * The paper sizes one DHL from point estimates; E21 asks the
 * operator's question: how many tracks, carts and vacuum plants for a
 * demand *distribution* at a target SLO quantile?  Three demand tiers
 * (light / medium / heavy median user counts, same shapes) run
 * through the CapacityPlanner — each scoring the full (tracks, carts,
 * plants) lattice against a common 2048-scenario stream through the
 * batched SoA evaluator — and the sizing table reports the winning
 * design, its capex, SLO attainment with a bootstrap 95 % CI, and the
 * DES cross-check ratio of the winner's sustained launch rate to the
 * closed-form bound.
 *
 * Gates: the winning lattice coordinates per tier are pinned (the
 * sizing decision itself is the regression surface), winner capex
 * must be non-decreasing in demand, and the DES ratio must sit inside
 * [0.30, 1.05] — the DES serializes dock/undock at both endpoints
 * while the paper's closed form spreads it over the rack stations
 * only, so the sustained rate lands near half the bound (documented
 * in DESIGN.md §15).  CI byte-compares the CSV across --jobs 1/4.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "plan/planner.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

struct Tier
{
    const char *name;
    double users_millions;
    const char *expect_winner; ///< Pinned winning design, "" = none.
};

/** The pinned sizing table: the planner's answer per demand tier. */
const Tier kTiers[] = {
    {"light", 0.5, "t2.c6.p1"},
    {"medium", 1.0, "t4.c6.p1"},
    {"heavy", 2.0, "t8.c6.p2"},
};

/** The shared E21 planner setup; only the demand median varies. */
plan::PlannerConfig
e21Config(double users_millions, std::uint64_t seed)
{
    plan::PlannerConfig cfg;
    cfg.assumptions.dhl = core::defaultConfig();
    cfg.assumptions.dhl.track_mode = core::TrackMode::Pipelined;
    cfg.assumptions.dhl.docking_stations = 2;
    cfg.assumptions.slo_latency = 60.0;
    cfg.assumptions.target_quantile = 0.9;
    constexpr double people_per_million = 1.0e6;
    cfg.demand.users_median = users_millions * people_per_million;
    cfg.tracks_max = 8;
    cfg.carts_max = 10;
    cfg.scenarios = 2048;
    cfg.bootstrap = 100;
    cfg.validate_des = true;
    cfg.jobs = 1; // parallelism is across tiers (the outer grid)
    cfg.seed = seed;
    return cfg;
}

std::string
designLabel(const plan::DesignPoint &d)
{
    std::string label = "t";
    label += std::to_string(d.tracks);
    label += ".c";
    label += std::to_string(d.carts_per_track);
    label += ".p";
    label += std::to_string(d.plants);
    return label;
}

/** One tier's sizing row, plus the pinned-winner and DES-band gates. */
exp::Scenario
tierScenario(const Tier &tier, std::uint64_t seed)
{
    exp::Scenario s;
    s.name = tier.name;
    s.run = [&tier, seed](exp::ScenarioContext &) {
        const plan::CapacityPlanner planner(
            e21Config(tier.users_millions, seed));
        const plan::PlanResult result = planner.plan();

        std::string winner = "none";
        std::vector<std::string> row{tier.name,
                                     u::formatSig(tier.users_millions, 3)};
        if (result.hasWinner()) {
            const plan::DesignReport &w = result.winnerReport();
            winner = designLabel(w.constants.design);
            row.push_back(winner);
            row.push_back(u::formatSig(w.constants.capex, 6));
            row.push_back(u::formatSig(w.attainment, 5));
            row.push_back(u::formatSig(w.attainment_lo, 5));
            row.push_back(u::formatSig(w.attainment_hi, 5));
            row.push_back(u::formatSig(w.latency_slo_q, 4));
            row.push_back(u::formatSig(result.des.ratio, 4));
        } else {
            row.insert(row.end(), {"none", "-", "-", "-", "-", "-", "-"});
        }

        if (winner != tier.expect_winner) {
            std::cerr << "E21 sizing regression: tier " << tier.name
                      << " winner " << winner << ", pinned "
                      << tier.expect_winner << "\n";
            std::exit(1);
        }
        if (result.des.ran &&
            (result.des.ratio < 0.30 || result.des.ratio > 1.05)) {
            std::cerr << "E21 DES cross-check out of band: ratio "
                      << result.des.ratio << " outside [0.30, 1.05]\n";
            std::exit(1);
        }
        return exp::ScenarioRows{row};
    };
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("E21 (beyond-paper)",
                      "Monte-Carlo capacity planning: cheapest "
                      "(tracks, carts, plants) meeting a P90 60 s SLO "
                      "over 2048 sampled demand scenarios per tier");
    }

    const std::uint64_t seed = bench::seedOr(opts, 21);
    exp::Experiment e21("e21");
    for (const Tier &tier : kTiers)
        e21.add(tierScenario(tier, seed));

    exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(e21);
    bench::emit(result,
                {"Tier", "UsersM", "Winner", "CapexUSD", "Attainment",
                 "CI95lo", "CI95hi", "SLOq_s", "DESratio"},
                opts);

    // Sanity across tiers: demand growth never makes the fleet cheaper.
    double prev_capex = 0.0;
    for (const auto &sc : result.scenarios) {
        const double capex = std::strtod(sc.rows[0][3].c_str(), nullptr);
        if (capex < prev_capex) {
            std::cerr << "E21 capex not monotone in demand: "
                      << sc.rows[0][0] << " costs " << capex
                      << " after " << prev_capex << "\n";
            return 1;
        }
        prev_capex = capex;
    }

    if (!opts.csv) {
        std::cout << "\nEach tier scores the full lattice against one "
                     "common scenario stream (common random numbers), "
                     "so winners are comparable across tiers.  The DES "
                     "ratio is the winner's event-driven launch rate "
                     "over the closed-form bound; ~0.5 quantifies the "
                     "endpoint serialization the paper's pipelined "
                     "accounting idealizes away.\n";
    }
    return 0;
}
