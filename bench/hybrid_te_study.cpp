/**
 * @file
 * Experiment E20 — hybrid traffic-engineering study (beyond-paper).
 *
 * The paper sizes DHL against the optical network one transfer at a
 * time; a deployed DHL runs *alongside* that network, and a traffic
 * engineer chooses per request.  E20 serves the same two-class profile
 * (small latency-sensitive "interactive" requests and large "bulk"
 * ones) on a 2-track fleet three ways: everything on the carts
 * (dhl-only), everything on the optical uplink (optical-only), and the
 * TE controller's hybrid split.  The frontier table reports energy,
 * weighted Jain fairness over per-tenant goodput, interactive P99 and
 * bulk goodput per mode, and asserts the hybrid's frontier point
 * strictly dominates both pure modes: lower interactive P99 than
 * dhl-only AND higher bulk goodput than optical-only.  CI byte-compares
 * the CSV across --jobs 1/4 and --des-shards 1/4.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "exp/slo.hpp"
#include "serve/serving.hpp"

using namespace dhl;
namespace u = dhl::units;

namespace {

/** The shared E20 environment: a healthy 2-track fleet with a mixed
 *  interactive/bulk profile.  TE always plans on one DES shard, so
 *  des_shards is forwarded only to pin the CI identity. */
serve::ServeConfig
e20Config(te::TeMode mode, std::size_t des_shards)
{
    serve::ServeConfig cfg;
    cfg.dhl = core::defaultConfig();
    cfg.dhl.docking_stations = 2;
    cfg.tracks = 2;
    cfg.seed = 20;
    cfg.epoch = 600.0;
    cfg.carts_per_track = 4;
    cfg.max_pending = 256;
    cfg.policy = ops::DispatchPolicy::LeastQueued;
    cfg.des_shards = des_shards;

    // Interactive requests are far below the TE size threshold; bulk
    // ones are far above it.  Fixed sizes keep the contrast sharp.
    workloads::RequestClass interactive{"interactive", 3.0,
                                        u::gigabytes(2), 0.0, 1};
    workloads::RequestClass bulk{"bulk", 1.0, u::gigabytes(192), 0.0, 0};
    cfg.stages = {
        workloads::StageSpec{"ramp", 1200.0, 0.0, 0.3,
                             {interactive, bulk}},
        workloads::StageSpec{"peak", 2400.0, 0.3, 0.3,
                             {interactive, bulk}},
        workloads::StageSpec{"drain", 1200.0, 0.3, 0.0,
                             {interactive, bulk}},
    };

    cfg.te.enabled = true;
    cfg.te.mode = mode;
    cfg.te.control_period = 60.0;
    cfg.te.small_bytes = u::gigabytes(8.0);
    cfg.te.optical_capacity = u::gigabitsPerSecond(100.0);
    cfg.te.headroom = 0.9;
    cfg.te.usage_multiplier = 1.1;
    cfg.te.history = 4;
    cfg.te.min_priority_contended = 1;
    cfg.te.route = "C";
    return cfg;
}

/** Frontier metrics of one mode's run. */
struct ModeOutcome
{
    double energy = 0.0;          ///< J, carts + optical
    double jain = 0.0;            ///< weighted Jain over tenant goodput
    double interactive_p99 = 0.0; ///< s
    double bulk_goodput = 0.0;    ///< B/s over the makespan
};

ModeOutcome
outcomeOf(serve::ServingSim &sim)
{
    ModeOutcome o;
    o.energy = sim.totalEnergy();
    // Per-tenant goodput summed over substrates, weighted by the
    // arrival-mix weight (interactive 3 : bulk 1).
    std::vector<double> goodput;
    std::vector<double> weight;
    for (const exp::ClassSlo &row : sim.teTable()) {
        if (row.name == "interactive") {
            o.interactive_p99 = std::max(o.interactive_p99, row.p99);
        } else {
            o.bulk_goodput += row.goodput;
        }
        // Rows are tenant-major with the DHL row first, so "dhl"
        // opens a new tenant and "optical" folds into it.
        if (row.substrate == std::string("dhl")) {
            goodput.push_back(row.goodput);
            weight.push_back(row.name == "interactive" ? 3.0 : 1.0);
        } else {
            goodput.back() += row.goodput;
        }
    }
    o.jain = stats::jainFairnessIndex(goodput, weight);
    return o;
}

/** Per-(class, substrate) SLO rows for one TE mode. */
exp::Scenario
modeScenario(te::TeMode mode, std::size_t des_shards)
{
    exp::Scenario s;
    s.name = te::to_string(mode);
    s.separator_after = true;
    s.run = [mode, des_shards](exp::ScenarioContext &) {
        serve::ServingSim sim(e20Config(mode, des_shards));
        sim.run();
        exp::ScenarioRows rows;
        for (const exp::ClassSlo &c : sim.teTable()) {
            std::vector<std::string> row{te::to_string(mode)};
            for (std::string &cell : exp::classSloRow(c))
                row.push_back(std::move(cell));
            rows.push_back(std::move(row));
        }
        return rows;
    };
    return s;
}

/** The latency/energy/fairness frontier plus the dominance check. */
exp::Scenario
frontierScenario(std::size_t des_shards)
{
    exp::Scenario s;
    s.name = "frontier";
    s.run = [des_shards](exp::ScenarioContext &) {
        const te::TeMode modes[] = {te::TeMode::DhlOnly,
                                    te::TeMode::OpticalOnly,
                                    te::TeMode::Hybrid};
        ModeOutcome out[3];
        exp::ScenarioRows rows;
        for (int m = 0; m < 3; ++m) {
            serve::ServingSim sim(e20Config(modes[m], des_shards));
            sim.run();
            out[m] = outcomeOf(sim);
            rows.push_back({te::to_string(modes[m]),
                            u::formatEnergy(out[m].energy),
                            u::formatSig(out[m].jain, 6),
                            u::formatDuration(out[m].interactive_p99),
                            u::formatBandwidth(out[m].bulk_goodput), ""});
        }
        const bool faster_interactive =
            out[2].interactive_p99 < out[0].interactive_p99;
        const bool more_bulk = out[2].bulk_goodput > out[1].bulk_goodput;
        rows.push_back({"hybrid dominates", "", "",
                        faster_interactive ? "yes" : "NO",
                        more_bulk ? "yes" : "NO",
                        faster_interactive && more_bulk ? "PASS"
                                                        : "FAIL"});
        if (!(faster_interactive && more_bulk)) {
            std::cerr << "E20 dominance violated: hybrid interactive "
                         "P99 vs dhl-only: "
                      << out[2].interactive_p99 << " vs "
                      << out[0].interactive_p99
                      << "; hybrid bulk goodput vs optical-only: "
                      << out[2].bulk_goodput << " vs "
                      << out[1].bulk_goodput << "\n";
            std::exit(1);
        }
        return rows;
    };
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opts = bench::parseArgs(argc, argv);
    if (!opts.csv) {
        bench::banner("E20 (beyond-paper)",
                      "hybrid DHL/optical traffic engineering: "
                      "per-class substrate SLOs and the "
                      "latency/energy/fairness frontier");
    }

    exp::Experiment e20("e20");
    e20.add(modeScenario(te::TeMode::DhlOnly, opts.des_shards));
    e20.add(modeScenario(te::TeMode::OpticalOnly, opts.des_shards));
    e20.add(modeScenario(te::TeMode::Hybrid, opts.des_shards));

    exp::ExperimentRunner runner(bench::runOptions(opts));
    const exp::ExperimentResult result = runner.run(e20);
    std::vector<std::string> headers{"Mode"};
    for (std::string &h : exp::classSloHeaders())
        headers.push_back(std::move(h));
    bench::emit(result, std::move(headers), opts);

    exp::Experiment frontier("e20-frontier");
    frontier.add(frontierScenario(opts.des_shards));
    const exp::ExperimentResult fresult = runner.run(frontier);
    if (!opts.csv)
        std::cout << "\n";
    bench::emit(fresult,
                {"Mode", "Energy", "Jain(goodput)", "InteractiveP99",
                 "BulkGoodput", "Dominance"},
                opts);

    if (!opts.csv) {
        std::cout << "\nGoodput is delivered bytes over the elapsed "
                     "makespan, so a mode that drains its backlog "
                     "slowly scores lower even when everything is "
                     "eventually served.  Jain is the weighted index "
                     "over per-tenant goodput (interactive 3 : bulk "
                     "1).  The dominance row asserts the hybrid "
                     "frontier point beats dhl-only on interactive "
                     "P99 and optical-only on bulk goodput.\n";
    }
    return 0;
}
